#!/usr/bin/env python3
"""Retiming your own design: from an ISCAS89 .bench description.

Parses a small FSM written in .bench format, runs the G-RAR flow, and
simulates the error rate of the result — the path a downstream user
takes with their own netlists.

Run:  python examples/custom_circuit.py
"""

from repro.cells import default_library
from repro.flows import prepare_circuit, run_flow
from repro.netlist import parse_bench, validate
from repro.sim import estimate_error_rate

#: A tiny serial parity/accumulator FSM in .bench syntax.
BENCH_TEXT = """
# 4-bit accumulating parity checker
INPUT(din0)
INPUT(din1)
INPUT(enable)
OUTPUT(parity)
OUTPUT(carry_out)

s0 = DFF(n_s0)
s1 = DFF(n_s1)
s2 = DFF(n_s2)
s3 = DFF(n_s3)

x0   = XOR(din0, s0)
x1   = XOR(din1, s1)
a0   = AND(din0, s0)
a1   = AND(din1, s1)
mid  = XOR(x1, a0)
high = XOR(s2, a1)
top  = XOR(s3, high)

n_s0 = AND(enable, x0)
n_s1 = AND(enable, mid)
n_s2 = AND(enable, high)
n_s3 = AND(enable, top)

parity    = XOR(x0, top)
carry_out = AND(a0, a1)
"""


def main() -> None:
    library = default_library()
    netlist = parse_bench(BENCH_TEXT, library, name="parity4")
    validate(netlist, library)
    print(f"parsed: {netlist.stats()}")

    scheme, _ = prepare_circuit(netlist, library)
    print(f"derived clock: Pi = {scheme.period:.4f} ns, "
          f"window = {scheme.resiliency_window:.4f} ns")

    outcome = run_flow("grar", netlist, library, overhead=1.0, scheme=scheme)
    print(f"G-RAR: {outcome.n_slaves} slave latches, "
          f"{outcome.n_edl} error-detecting masters, "
          f"total area {outcome.total_area:.1f}")
    sites = outcome.retiming.placement.latch_sites(outcome.circuit.netlist)
    print("slave positions:", ", ".join(name for name, _ in sites))

    report = estimate_error_rate(
        outcome.circuit,
        outcome.retiming.placement,
        outcome.edl_endpoints,
        cycles=256,
    )
    print(f"simulated error rate: {report.error_rate:.2f}% "
          f"({report.error_cycles}/{report.cycles} cycles; "
          f"{report.non_edl_violations} non-EDL violations)")


if __name__ == "__main__":
    main()
