"""Solver parity: simplex / scipy / networkx agree on min-cost flow.

The solver-fallback chain is only safe if every backend returns the
same optimum (objective *and* dual certificate) — these tests pin that
down on randomized instances with fixed seeds, then exercise the
fallback and cross-check machinery itself.
"""

import random
from fractions import Fraction

import pytest

from repro.errors import (
    InfeasibleFlowError,
    SolverError,
    SolverTimeoutError,
)
from repro.retime.mincostflow import (
    BACKENDS,
    MinCostFlowResult,
    SolverPolicy,
    solve_min_cost_flow,
    verify_solution,
)


def random_instance(seed, n_nodes=8, n_extra=12, fractional=False):
    """A feasible uncapacitated min-cost-flow instance.

    A bidirected ring guarantees feasibility for any balanced demand
    vector; extra random arcs add alternative optima.  Costs are
    non-negative, so no instance is unbounded.
    """
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(n_nodes)]
    arcs = []
    for i in range(n_nodes):
        j = (i + 1) % n_nodes
        arcs.append((nodes[i], nodes[j], rng.randint(0, 9)))
        arcs.append((nodes[j], nodes[i], rng.randint(0, 9)))
    for _ in range(n_extra):
        tail, head = rng.sample(nodes, 2)
        arcs.append((tail, head, rng.randint(0, 9)))

    denominators = (2, 3) if fractional else (1,)
    demands = {}
    total = Fraction(0)
    for node in nodes[:-1]:
        value = Fraction(rng.randint(-6, 6), rng.choice(denominators))
        demands[node] = value
        total += value
    demands[nodes[-1]] = -total
    return nodes, arcs, demands


class TestBackendParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_integral_instances_agree(self, seed):
        nodes, arcs, demands = random_instance(seed)
        results = {}
        for backend in BACKENDS:
            results[backend] = solve_min_cost_flow(
                nodes, arcs, demands,
                SolverPolicy(backends=(backend,), verify=True),
            )
        objectives = {r.objective for r in results.values()}
        assert len(objectives) == 1, objectives
        for result in results.values():
            # Integral problem => integral optimum (total unimodularity).
            for value in result.flows.values():
                assert value.denominator == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_fractional_demands_agree(self, seed):
        nodes, arcs, demands = random_instance(seed + 100, fractional=True)
        results = [
            solve_min_cost_flow(
                nodes, arcs, demands,
                SolverPolicy(backends=(backend,), verify=True),
            )
            for backend in BACKENDS
        ]
        assert len({r.objective for r in results}) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_dual_certificates_verify(self, seed):
        nodes, arcs, demands = random_instance(seed + 200)
        for backend in BACKENDS:
            result = solve_min_cost_flow(
                nodes, arcs, demands, SolverPolicy(backends=(backend,))
            )
            assert verify_solution(nodes, arcs, demands, result) == []

    def test_cross_check_runs_all_backends(self):
        nodes, arcs, demands = random_instance(7)
        result = solve_min_cost_flow(
            nodes, arcs, demands, SolverPolicy(cross_check=True)
        )
        answered = [a.backend for a in result.attempts if a.status == "ok"]
        assert answered == list(BACKENDS)
        assert result.backend == "simplex"


class TestFallbackChain:
    def test_simplex_budget_falls_through_to_scipy(self):
        nodes, arcs, demands = random_instance(3, n_nodes=10)
        policy = SolverPolicy(max_iterations=1)
        result = solve_min_cost_flow(nodes, arcs, demands, policy)
        assert result.backend == "scipy"
        attempts = {a.backend: a for a in result.attempts}
        assert attempts["simplex"].status == "failed"
        assert attempts["simplex"].error_type == "SolverTimeoutError"
        # The fallback answer is still the true optimum.
        reference = solve_min_cost_flow(
            nodes, arcs, demands, SolverPolicy(backends=("networkx",))
        )
        assert result.objective == reference.objective

    def test_single_capped_backend_raises_timeout(self):
        nodes, arcs, demands = random_instance(3, n_nodes=10)
        with pytest.raises(SolverTimeoutError):
            solve_min_cost_flow(
                nodes, arcs, demands,
                SolverPolicy(backends=("simplex",), max_iterations=1),
            )

    def test_all_backends_failing_reports_attempts(self):
        nodes, arcs, demands = random_instance(5)
        with pytest.raises(SolverError) as info:
            solve_min_cost_flow(
                nodes, arcs, demands,
                SolverPolicy(backends=("simplex",), max_iterations=1),
            )
        # The chain annotates the terminal error; subclass raises keep
        # their own message.
        assert "iteration budget" in str(info.value)

    def test_unknown_backend_rejected(self):
        nodes, arcs, demands = random_instance(1)
        with pytest.raises(SolverError, match="unknown solver backend"):
            solve_min_cost_flow(
                nodes, arcs, demands, SolverPolicy(backends=("gurobi",))
            )

    def test_infeasible_propagates_without_fallback(self):
        nodes = ["a", "b"]
        arcs = [("a", "b", 1)]
        demands = {"a": Fraction(1), "b": Fraction(1)}
        with pytest.raises(InfeasibleFlowError):
            solve_min_cost_flow(nodes, arcs, demands)

    def test_deadline_is_enforced(self):
        nodes, arcs, demands = random_instance(9, n_nodes=12, n_extra=30)
        policy = SolverPolicy(backends=("simplex",), deadline_s=0.0)
        with pytest.raises(SolverTimeoutError, match="deadline"):
            solve_min_cost_flow(nodes, arcs, demands, policy)


class TestRetimingParity:
    def test_retiming_flow_matches_lp_under_every_backend(self, fig4):
        from repro.retime.graph import build_retiming_graph
        from repro.retime.ilp import solve_retiming_lp
        from repro.retime.netflow import solve_retiming_flow
        from repro.retime.regions import compute_regions

        regions = compute_regions(fig4)
        graph = build_retiming_graph(fig4, regions, overhead=2.0)
        reference = solve_retiming_lp(graph).objective
        for backend in BACKENDS:
            solution = solve_retiming_flow(
                graph, policy=SolverPolicy(backends=(backend,))
            )
            assert solution.objective == reference
            assert solution.backend == backend

    def test_flow_solution_records_attempts(self, fig4):
        from repro.retime.graph import build_retiming_graph
        from repro.retime.netflow import solve_retiming_flow
        from repro.retime.regions import compute_regions

        regions = compute_regions(fig4)
        graph = build_retiming_graph(fig4, regions, overhead=2.0)
        solution = solve_retiming_flow(graph)
        assert solution.backend == "simplex"
        assert [a.backend for a in solution.attempts] == ["simplex"]
        assert solution.attempts[0].status == "ok"
