"""End-to-end tests of the flow orchestration."""

import pytest

from repro.analysis import area_breakdown, improvement, summarize_outcomes
from repro.flows import METHODS, prepare_circuit, run_flow, run_methods


@pytest.fixture(scope="module")
def flow_setup(small_netlist, library):
    scheme, _ = prepare_circuit(small_netlist, library)
    return small_netlist, library, scheme


@pytest.fixture(scope="module")
def all_outcomes(flow_setup):
    netlist, library, scheme = flow_setup
    return {
        method: run_flow(method, netlist, library, 1.0, scheme=scheme)
        for method in METHODS
        if method != "grar-lp"
    }


class TestRunFlow:
    def test_unknown_method(self, flow_setup):
        netlist, library, scheme = flow_setup
        with pytest.raises(ValueError):
            run_flow("yolo", netlist, library, 1.0, scheme=scheme)

    def test_all_methods_complete(self, all_outcomes):
        for method, outcome in all_outcomes.items():
            assert outcome.total_area > 0, method
            assert outcome.n_slaves > 0, method

    def test_source_netlist_untouched(self, flow_setup):
        netlist, library, scheme = flow_setup
        cells_before = {g.name: g.cell for g in netlist}
        run_flow("grar", netlist, library, 2.0, scheme=scheme)
        assert {g.name: g.cell for g in netlist} == cells_before

    def test_placements_legal(self, all_outcomes):
        for method, outcome in all_outcomes.items():
            report = outcome.circuit.check_legality(
                outcome.retiming.placement
            )
            assert report.ok, f"{method}: {report.summary()}"

    def test_edl_covers_window_arrivals(self, all_outcomes):
        """Whatever the method, every master still inside the window
        at the end must carry an error-detecting latch."""
        for method, outcome in all_outcomes.items():
            circuit = outcome.circuit
            arrivals = circuit.endpoint_arrivals(
                outcome.retiming.placement
            )
            window_open = circuit.scheme.window_open
            for name, arrival in arrivals.items():
                if arrival > window_open + 1e-9:
                    assert name in outcome.edl_endpoints, (
                        f"{method}: {name}"
                    )

    def test_grar_beats_or_matches_base(self, all_outcomes):
        base = all_outcomes["base"]
        grar = all_outcomes["grar"]
        assert grar.sequential_area <= base.sequential_area * 1.02

    def test_grar_lp_equals_flow_counts(self, flow_setup):
        netlist, library, scheme = flow_setup
        flow = run_flow("grar", netlist, library, 1.0, scheme=scheme)
        lp = run_flow("grar-lp", netlist, library, 1.0, scheme=scheme)
        assert lp.retiming.objective == flow.retiming.objective

    def test_deterministic(self, flow_setup):
        netlist, library, scheme = flow_setup
        a = run_flow("grar", netlist, library, 1.0, scheme=scheme)
        b = run_flow("grar", netlist, library, 1.0, scheme=scheme)
        assert a.total_area == pytest.approx(b.total_area)
        assert a.edl_endpoints == b.edl_endpoints
        assert a.retiming.placement == b.retiming.placement

    def test_sizing_disabled(self, flow_setup):
        netlist, library, scheme = flow_setup
        outcome = run_flow(
            "grar", netlist, library, 1.0, scheme=scheme, sizing=False
        )
        assert outcome.sizing is None
        assert outcome.rescue is None
        assert outcome.recovery is None
        # Without the compile, the comb area is exactly the input's.
        assert outcome.comb_area == pytest.approx(
            netlist.comb_area(outcome.circuit.library)
        )

    def test_overhead_scaling_of_seq_area(self, flow_setup):
        """At fixed counts, sequential area grows linearly in c."""
        netlist, library, scheme = flow_setup
        low = run_flow("base", netlist, library, 0.5, scheme=scheme)
        high = run_flow("base", netlist, library, 2.0, scheme=scheme)
        # Base ignores c during retiming: same placement, same counts.
        assert low.n_slaves == high.n_slaves
        assert low.n_edl == high.n_edl
        latch = low.cost.latch_area
        assert high.sequential_area - low.sequential_area == pytest.approx(
            1.5 * low.n_edl * latch, rel=1e-6
        )

    def test_movable_master_runs(self, flow_setup):
        netlist, library, scheme = flow_setup
        outcome = run_flow(
            "rvl-movable", netlist, library, 1.0, scheme=scheme
        )
        assert outcome.total_area > 0

    def test_run_methods_shared_scheme(self, flow_setup):
        netlist, library, scheme = flow_setup
        outcomes = run_methods(
            ["base", "grar"], netlist, library, 1.0, scheme=scheme
        )
        assert set(outcomes) == {"base", "grar"}
        assert (
            outcomes["base"].circuit.scheme
            == outcomes["grar"].circuit.scheme
        )


class TestGateModelFlow:
    def test_gate_model_decisions_path_evaluation(self, flow_setup):
        """Table II setup: decide with the gate model, evaluate with
        the path model — the evaluation circuit must be path-based."""
        netlist, library, scheme = flow_setup
        outcome = run_flow(
            "grar-gate", netlist, library, 1.0, scheme=scheme
        )
        assert outcome.circuit.engine.calculator.name == "path"

    def test_path_model_no_worse_on_average(self, flow_setup):
        netlist, library, scheme = flow_setup
        gate = run_flow("grar-gate", netlist, library, 1.0, scheme=scheme)
        path = run_flow("grar", netlist, library, 1.0, scheme=scheme)
        # Not guaranteed per-instance, but the accurate model must not
        # lose catastrophically on a single small circuit.
        assert path.total_area <= gate.total_area * 1.10


class TestAnalysis:
    def test_improvement_sign_convention(self):
        assert improvement(100, 90) == pytest.approx(10.0)
        assert improvement(100, 110) == pytest.approx(-10.0)
        assert improvement(0, 5) == 0.0

    def test_summarize_outcomes(self, all_outcomes):
        summary = summarize_outcomes(all_outcomes, metric="total_area")
        assert "grar" in summary and "base" not in summary

    def test_summarize_missing_reference(self, all_outcomes):
        with pytest.raises(KeyError):
            summarize_outcomes(all_outcomes, reference="nope")

    def test_area_breakdown_adds_up(self, all_outcomes):
        for outcome in all_outcomes.values():
            breakdown = area_breakdown(outcome)
            assert breakdown.total == pytest.approx(outcome.total_area)
            assert breakdown.sequential == pytest.approx(
                outcome.sequential_area
            )
