"""Scenario-engine tests: injectors, fragility, degradation contract.

The tentpole guarantees under test:

* injection plans are deterministic functions of one seed, and both
  simulation backends honour them **bit-identically** (the parity
  oracle keeps holding under SEU flips, glitch pulses, and delay
  corners);
* the selective-hardening policy threads through ``run_flow`` and the
  trade-off sweep as a first-class method;
* the scenario matrix degrades gracefully — crashes and hangs become
  typed FAILED entries, retried where transient, checkpointed into a
  resumable memo — and identical invocations render byte-identical
  reports.
"""

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cells import default_library
from repro.circuits.fig4 import fig4_netlist
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.errors import SimulationError
from repro.flows import prepare_circuit, run_flow
from repro.flows.tradeoff import error_rate_tradeoff
from repro.retime import base_retime
from repro.scenarios import (
    MIN_DELAY_FACTOR,
    GlitchSpec,
    InjectionPlan,
    build_injection_plan,
    delay_corner_scale,
    glitch_events,
    latch_state_keys,
    rank_fragility,
    select_hardened,
)
from repro.scenarios.engine import (
    CORNERS,
    UPSETS,
    ScenarioReport,
    run_scenarios,
    scenario_seed,
)
from repro.sim import estimate_error_rate

LIBRARY = default_library()


@pytest.fixture(scope="module")
def fig4_prepared():
    """Fig. 4 prepared against the cell library (simulatable)."""
    return prepare_circuit(fig4_netlist(), LIBRARY)[1]


SEEDS = st.integers(min_value=1, max_value=10**6)
SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGlitchEvents:
    def test_constant_wave_gets_pulse(self):
        times, values = glitch_events(
            0, [], [], GlitchSpec("n", 1.0, 0.5)
        )
        assert times == [1.0, 1.5]
        assert values == [1, 0]

    def test_pulse_swallows_interior_transitions(self):
        # Original: 0 ->(1.2) 1 ->(1.4) 0; pulse [1.0, 2.0) forces 1.
        times, values = glitch_events(
            0, [1.2, 1.4], [1, 0], GlitchSpec("n", 1.0, 1.0)
        )
        assert times == [1.0, 2.0]
        assert values == [1, 0]

    def test_restores_original_value_at_end(self):
        # Wave rises at 1.5, inside the pulse; the pulse forces 1 (the
        # complement of the value at start) so the end event to the
        # original value 1 is a no-op and must be pruned.
        times, values = glitch_events(
            0, [1.5], [1], GlitchSpec("n", 1.0, 1.0)
        )
        assert times == [1.0]
        assert values == [1]

    def test_events_before_pulse_survive(self):
        times, values = glitch_events(
            0, [0.5, 3.0], [1, 0], GlitchSpec("n", 1.0, 0.5)
        )
        # value at start is 1 -> forced 0 during [1.0, 1.5), back to 1.
        assert times == [0.5, 1.0, 1.5, 3.0]
        assert values == [1, 0, 1, 0]

    def test_output_is_normalized(self):
        for spec in (
            GlitchSpec("n", 0.1, 0.2),
            GlitchSpec("n", 1.0, 2.0),
            GlitchSpec("n", 2.5, 0.1),
        ):
            times, values = glitch_events(
                1, [1.0, 2.0, 2.1], [0, 1, 0], spec
            )
            assert times == sorted(times)
            current = 1
            for value in values:
                assert value != current
                current = value


class TestDelayCornerScale:
    def test_systematic_only_is_uniform(self, fig4):
        scale = delay_corner_scale(fig4.netlist, systematic=1.1)
        assert scale
        assert all(f == 1.1 for f in scale.values())
        assert set(scale) == {
            g.name for g in fig4.netlist.comb_gates()
        }

    def test_sigma_is_seed_deterministic(self, fig4):
        a = delay_corner_scale(
            fig4.netlist, sigma=0.1, rng=random.Random(5)
        )
        b = delay_corner_scale(
            fig4.netlist, sigma=0.1, rng=random.Random(5)
        )
        assert a == b
        c = delay_corner_scale(
            fig4.netlist, sigma=0.1, rng=random.Random(6)
        )
        assert a != c

    def test_clamped_at_floor(self, fig4):
        # An absurd sigma will draw negative factors; the clamp keeps
        # every delay positive.
        scale = delay_corner_scale(
            fig4.netlist, sigma=50.0, rng=random.Random(1)
        )
        assert min(scale.values()) >= MIN_DELAY_FACTOR

    def test_validation(self, fig4):
        with pytest.raises(ValueError):
            delay_corner_scale(fig4.netlist, systematic=0.0)
        with pytest.raises(ValueError):
            delay_corner_scale(fig4.netlist, sigma=-0.1)


class TestInjectionPlan:
    def test_empty_plan(self):
        plan = InjectionPlan()
        assert plan.empty
        assert plan.counts() == {
            "scaled_gates": 0, "glitches": 0, "seu_flips": 0
        }

    def test_build_is_deterministic(self, fig4):
        kwargs = dict(
            cycles=64, seed=11, systematic=1.05, sigma=0.02,
            seu_rate=0.2, glitch_rate=0.2,
        )
        a = build_injection_plan(fig4.netlist, fig4.scheme, **kwargs)
        b = build_injection_plan(fig4.netlist, fig4.scheme, **kwargs)
        assert a == b
        assert not a.empty

    def test_rate_validation(self, fig4):
        with pytest.raises(ValueError):
            build_injection_plan(
                fig4.netlist, fig4.scheme, cycles=8, seed=1, seu_rate=1.5
            )
        with pytest.raises(ValueError):
            build_injection_plan(
                fig4.netlist, fig4.scheme, cycles=8, seed=1,
                glitch_rate=-0.1,
            )

    def test_placement_extends_seu_targets(self, fig4):
        result = base_retime(fig4, overhead=1.0)
        keys = latch_state_keys(fig4.netlist, result.placement)
        assert keys == sorted(keys)
        plan = build_injection_plan(
            fig4.netlist, fig4.scheme, cycles=256, seed=3,
            seu_rate=0.9, placement=result.placement,
        )
        targets = {t for flips in plan.seu_flips.values() for t in flips}
        assert any(t.startswith("latch:") for t in targets)

    def test_unknown_targets_raise_typed(self, fig4_prepared):
        circuit = fig4_prepared
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        plan = InjectionPlan(
            glitches={0: (GlitchSpec("no_such_net", 0.1, 0.1),)},
            label="bogus",
        )
        with pytest.raises(SimulationError) as info:
            estimate_error_rate(
                circuit, result.placement, edl, cycles=8, injection=plan
            )
        assert "no_such_net" in str(info.value)


def _parity_case(circuit, seed, cycles=48):
    """Run one injected estimate on both backends and compare."""
    result = base_retime(circuit, overhead=1.0)
    edl = circuit.edl_endpoints(result.placement)
    plan = build_injection_plan(
        circuit.netlist,
        circuit.scheme,
        cycles=cycles,
        seed=seed,
        systematic=1.0 + (seed % 7) * 0.01,
        sigma=0.03,
        seu_rate=0.15,
        glitch_rate=0.15,
        placement=result.placement,
    )
    reports = {
        backend: estimate_error_rate(
            circuit, result.placement, edl, cycles=cycles,
            seed=seed, backend=backend, injection=plan,
        )
        for backend in ("event", "compiled")
    }
    event, compiled = reports["event"], reports["compiled"]
    assert event.error_cycles == compiled.error_cycles
    assert event.per_endpoint == compiled.per_endpoint
    assert event.non_edl_violations == compiled.non_edl_violations
    assert event.final_flop_state == compiled.final_flop_state
    assert event.final_latch_state == compiled.final_latch_state
    return event


class TestBackendParityUnderInjection:
    """Satellite 3: the bit-parity oracle must survive injection."""

    @given(SEEDS)
    @SLOW
    def test_fig4_parity(self, seed):
        _, circuit = prepare_circuit(fig4_netlist(), LIBRARY)
        _parity_case(circuit, seed)

    @given(SEEDS)
    @SLOW
    def test_generated_parity(self, seed):
        spec = CloudSpec(
            name="scen",
            seed=seed % 50,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=40,
            depth=5,
            critical_fraction=0.3,
        )
        netlist = generate_circuit(spec, LIBRARY)
        _, circuit = prepare_circuit(netlist, LIBRARY)
        _parity_case(circuit, seed, cycles=32)

    def test_injection_perturbs_the_run(self, fig4_prepared):
        """The injectors must actually do something: a seeded SEU +
        glitch storm changes the report relative to the clean run."""
        circuit = fig4_prepared
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        clean = estimate_error_rate(
            circuit, result.placement, edl, cycles=64, seed=3
        )
        plan = build_injection_plan(
            circuit.netlist, circuit.scheme, cycles=64, seed=3,
            seu_rate=0.5, glitch_rate=0.5, placement=result.placement,
        )
        injected = estimate_error_rate(
            circuit, result.placement, edl, cycles=64, seed=3,
            injection=plan,
        )
        assert (
            injected.error_cycles != clean.error_cycles
            or injected.final_flop_state != clean.final_flop_state
            or injected.non_edl_violations != clean.non_edl_violations
        )


class TestFragility:
    def test_ranked_most_fragile_first(self, fig4):
        result = base_retime(fig4, overhead=1.0)
        report = rank_fragility(fig4, result.placement)
        slacks = [e.slack for e in report.entries]
        assert slacks == sorted(slacks)
        assert {e.endpoint for e in report.entries} == set(
            fig4.endpoint_names
        )
        for entry in report.entries:
            assert entry.slack == report.window_open - entry.arrival

    def test_fragile_set_matches_edl_oracle(self, fig4):
        """Arrival past the window opening is exactly the condition
        ``edl_endpoints`` uses — the two must agree."""
        result = base_retime(fig4, overhead=1.0)
        report = rank_fragility(fig4, result.placement)
        fragile = {e.endpoint for e in report.fragile()}
        assert fragile == fig4.edl_endpoints(result.placement)

    def test_select_hardened_fractions(self, fig4):
        result = base_retime(fig4, overhead=1.0)
        report = rank_fragility(fig4, result.placement)
        none = select_hardened(report, 0.0)
        half = select_hardened(report, 0.5)
        everyone = select_hardened(report, 1.0)
        assert none == set()
        assert half <= everyone
        assert everyone == {e.endpoint for e in report.fragile()}

    def test_fraction_validation(self, fig4):
        result = base_retime(fig4, overhead=1.0)
        report = rank_fragility(fig4, result.placement)
        with pytest.raises(ValueError):
            select_hardened(report, 1.5)
        with pytest.raises(ValueError):
            select_hardened(report, -0.1)


class TestSelectiveFlow:
    def test_selective_outcome_shape(self, library, fig4):
        outcome = run_flow(
            "selective", fig4.netlist, library, 1.0,
            harden_fraction=0.5,
        )
        retiming = outcome.retiming
        assert retiming.method == "selective"
        assert retiming.cost.n_edl == len(retiming.edl_endpoints)
        assert float(retiming.notes["harden_fraction"]) == 0.5
        assert outcome.n_edl == retiming.cost.n_edl

    def test_fraction_widens_the_edl_set(self, library, fig4):
        small = run_flow(
            "selective", fig4.netlist, library, 1.0,
            harden_fraction=0.5,
        )
        full = run_flow(
            "selective", fig4.netlist, library, 1.0,
            harden_fraction=1.0,
        )
        assert small.edl_endpoints <= full.edl_endpoints
        assert small.n_edl <= full.n_edl

    def test_selective_simulates_cleanly(self, library, fig4):
        outcome = run_flow(
            "selective", fig4.netlist, library, 1.0,
            harden_fraction=1.0,
        )
        report = estimate_error_rate(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=48,
            seed=5,
        )
        assert report.non_edl_violations == 0


class TestTradeoffMethods:
    def test_both_policies_share_one_curve(
        self, small_netlist, library, small_prepared
    ):
        scheme, _ = small_prepared
        points = error_rate_tradeoff(
            small_netlist, library, 1.0,
            budget_scales=(0.0, 1.0),
            harden_fractions=(0.0, 1.0),
            scheme=scheme,
            cycles=24,
            methods=("grar", "selective"),
        )
        by_method = {p.method for p in points}
        assert by_method == {"grar", "selective"}
        selective = [p for p in points if p.method == "selective"]
        assert [p.budget_scale for p in selective] == [0.0, 1.0]

    def test_default_is_grar_only(
        self, small_netlist, library, small_prepared
    ):
        scheme, _ = small_prepared
        points = error_rate_tradeoff(
            small_netlist, library, 1.0,
            budget_scales=(1.0,),
            scheme=scheme,
            cycles=16,
        )
        assert all(p.method == "grar" for p in points)


class TestScenarioSeed:
    def test_distinct_across_the_matrix(self):
        seeds = {
            scenario_seed(7, c, corner, upset, policy)
            for c in ("fig4", "s1196")
            for corner in ("nominal", "slow")
            for upset in ("none", "seu")
            for policy in ("grar", "selective")
        }
        assert len(seeds) == 16

    def test_stable(self):
        assert scenario_seed(7, "a", "b", "c", "d") == scenario_seed(
            7, "a", "b", "c", "d"
        )


def _run_matrix(**overrides):
    kwargs = dict(
        circuits=[("fig4", fig4_netlist())],
        library=LIBRARY,
        corners=("nominal",),
        upsets=("seu",),
        policies=("grar",),
        cycles=24,
        seed=13,
    )
    kwargs.update(overrides)
    return run_scenarios(kwargs.pop("circuits"), kwargs.pop("library"), **kwargs)


class TestScenarioEngine:
    def test_ok_entry_shape(self):
        report = _run_matrix()
        assert len(report.entries) == 1
        entry = report.entries[0]
        assert entry["status"] == "ok"
        assert entry["injected"]["seu_flips"] >= 0
        assert entry["seed"] == scenario_seed(
            13, "fig4", "nominal", "seu", "grar"
        )
        assert len(entry["state_digest"]) == 16

    def test_chaos_crash_degrades_to_typed_failed(self):
        report = _run_matrix(corners=("nominal", "chaos-crash"))
        assert len(report.ok_entries) == 1
        (failed,) = report.failed_entries
        assert failed["status"] == "failed"
        assert failed["failure_kind"] == "crash"
        assert failed["attempts"] == 1
        assert failed["error"]["stage"] == "scenario"
        assert "drill" in failed["message"]

    def test_chaos_hang_hits_deadline_and_retries(self):
        report = _run_matrix(
            corners=("chaos-hang",),
            deadline_s=0.5,
            hang_s=30.0,
        )
        (failed,) = report.failed_entries
        assert failed["failure_kind"] == "deadline"
        assert failed["attempts"] == 2

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            _run_matrix(corners=("warp-speed",))
        with pytest.raises(ValueError):
            _run_matrix(upsets=("emp",))
        with pytest.raises(ValueError):
            _run_matrix(policies=("prayer",))
        with pytest.raises(ValueError):
            _run_matrix(sim_backend="quantum")

    def test_identical_invocations_are_byte_identical(self):
        a = _run_matrix(upsets=("seu", "glitch"), policies=("grar", "selective"))
        b = _run_matrix(upsets=("seu", "glitch"), policies=("grar", "selective"))
        assert a.to_json() == b.to_json()

    def test_backends_render_identical_reports(self):
        a = _run_matrix(sim_backend="event")
        b = _run_matrix(sim_backend="compiled")
        assert a.to_json() == b.to_json()
        assert a.sim_backend != b.sim_backend  # kept in memory only

    def test_memo_resume_skips_completed(self, tmp_path):
        from repro import metrics

        memo = tmp_path / "memo.json"
        first = _run_matrix(
            corners=("nominal", "chaos-crash"), memo_path=memo
        )
        assert memo.exists()
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            second = _run_matrix(
                corners=("nominal", "chaos-crash"), memo_path=memo
            )
        assert second.to_json() == first.to_json()
        # Everything (including the FAILED entry) came from the memo.
        assert collector.counters.get("scenarios.memo_hits") == 2

    def test_memo_retry_failed_reattempts(self, tmp_path):
        memo = tmp_path / "memo.json"
        _run_matrix(corners=("chaos-crash",), memo_path=memo)
        from repro import metrics

        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            report = _run_matrix(
                corners=("chaos-crash",),
                memo_path=memo,
                retry_failed=True,
            )
        assert not collector.counters.get("scenarios.memo_hits")
        (failed,) = report.failed_entries
        assert failed["failure_kind"] == "crash"

    def test_memo_config_mismatch_is_ignored(self, tmp_path):
        memo = tmp_path / "memo.json"
        _run_matrix(memo_path=memo)
        report = _run_matrix(memo_path=memo, seed=14)
        entry = report.entries[0]
        assert entry["seed"] == scenario_seed(
            14, "fig4", "nominal", "seu", "grar"
        )

    def test_unpreparable_circuit_degrades_whole_submatrix(self):
        from repro.faults import corrupt_net

        broken = fig4_netlist()
        corrupt_net(broken, random.Random(1))
        report = run_scenarios(
            [("fig4", fig4_netlist()), ("broken", broken)],
            LIBRARY,
            corners=("nominal",),
            upsets=("none", "seu"),
            policies=("grar",),
            cycles=16,
            seed=5,
        )
        failed = report.failed_entries
        assert len(failed) == 2
        assert all(e["stage"] == "prepare" for e in failed)
        assert all(e["circuit"] == "broken" for e in failed)
        assert len(report.ok_entries) == 2

    def test_report_excludes_backend_and_wall(self):
        report = ScenarioReport(
            seed=1, overhead=1.0, cycles=8,
            sim_backend="compiled", harden_fraction=0.5,
            wall_s=12.5,
        )
        data = report.to_dict()
        assert "sim_backend" not in data
        assert "wall_s" not in data
        assert data["schema"] == "repro-scenarios/1"


class TestScenarioCli:
    def test_partial_failure_still_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main([
            "scenarios", "fig4",
            "--corners", "nominal", "chaos-crash",
            "--upsets", "none",
            "--policy", "grar",
            "--cycles", "16",
            "--seed", "3",
            "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["n_ok"] == 1
        assert data["n_failed"] == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "crash" in captured.out

    def test_total_failure_exits_partial(self, capsys):
        from repro.cli import main, EXIT_PARTIAL

        code = main([
            "scenarios", "fig4",
            "--corners", "chaos-crash",
            "--upsets", "none",
            "--policy", "grar",
            "--cycles", "16",
        ])
        assert code == EXIT_PARTIAL
        assert "0 ok" in capsys.readouterr().out

    def test_seed_threads_to_byte_identical_reports(self, tmp_path):
        """Satellite 1: one --seed, two invocations, identical bytes."""
        from repro.cli import main

        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            code = main([
                "scenarios", "fig4",
                "--corners", "nominal", "sigma",
                "--upsets", "seu", "glitch",
                "--policy", "grar", "selective",
                "--cycles", "24",
                "--seed", "42",
                "--out", str(out),
            ])
            assert code == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_bad_fraction_is_usage_error(self):
        from repro.cli import main, EXIT_USAGE

        code = main([
            "scenarios", "fig4", "--harden-fraction", "2.0",
        ])
        assert code == EXIT_USAGE


class TestCornerAndUpsetCatalogue:
    def test_chaos_corners_are_marked(self):
        assert CORNERS["chaos-crash"].chaos == "crash"
        assert CORNERS["chaos-hang"].chaos == "hang"
        real = [c for c in CORNERS.values() if not c.chaos]
        assert all(c.systematic > 0 for c in real)

    def test_upset_rates_are_probabilities(self):
        for spec in UPSETS.values():
            assert 0.0 <= spec.seu_rate <= 1.0
            assert 0.0 <= spec.glitch_rate <= 1.0
