"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "s1196"])
        assert args.method == "grar"
        assert args.overhead == 1.0

    def test_method_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "s1196", "--method", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s1196" in out and "plasma" in out

    def test_run(self, capsys):
        assert main(["run", "s1488", "--method", "base"]) == 0
        out = capsys.readouterr().out
        assert "base[s1488" in out

    def test_run_with_error_rate(self, capsys):
        assert main(
            ["run", "s1488", "--method", "grar", "--error-rate",
             "--cycles", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "error rate" in out

    def test_tables_filtered(self, capsys):
        assert main(
            ["tables", "s1488", "--tables", "table i", "--cycles", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table V:" not in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Cut2" in out
