"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main

S27 = os.path.join(os.path.dirname(__file__), "data", "s27.bench")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "s1196"])
        assert args.method == "grar"
        assert args.overhead == 1.0

    def test_method_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "s1196", "--method", "magic"])

    def test_run_circuit_is_optional(self):
        args = build_parser().parse_args(
            ["run", "--from-bench", "x.bench"]
        )
        assert args.circuit is None
        assert args.from_bench == "x.bench"

    def test_run_from_verilog(self):
        args = build_parser().parse_args(
            ["run", "--from-verilog", "x.v", "--guard", "strict"]
        )
        assert args.from_verilog == "x.v"
        assert args.guard == "strict"

    def test_tables_external_files_accumulate(self):
        args = build_parser().parse_args(
            ["tables", "s1196", "--from-bench", "a.bench",
             "--from-bench", "b.bench", "--from-verilog", "c.v"]
        )
        assert args.circuits == ["s1196"]
        assert args.from_bench == ["a.bench", "b.bench"]
        assert args.from_verilog == ["c.v"]

    def test_convert_defaults(self):
        args = build_parser().parse_args(["convert", "s27.bench"])
        assert args.netlist == "s27.bench"
        assert args.format == "auto"
        assert args.name is None
        assert not args.no_balance
        assert args.out is None

    def test_convert_format_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["convert", "x.bench", "--format", "edif"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s1196" in out and "plasma" in out

    def test_run(self, capsys):
        assert main(["run", "s1488", "--method", "base"]) == 0
        out = capsys.readouterr().out
        assert "base[s1488" in out

    def test_run_with_error_rate(self, capsys):
        assert main(
            ["run", "s1488", "--method", "grar", "--error-rate",
             "--cycles", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "error rate" in out

    def test_tables_filtered(self, capsys):
        assert main(
            ["tables", "s1488", "--tables", "table i", "--cycles", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table V:" not in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Cut2" in out

    def test_tables_with_external_bench(self, capsys):
        assert main(
            ["tables", "--from-bench", S27, "--tables", "table iv"]
        ) == 0
        captured = capsys.readouterr()
        assert "s27" in captured.out
        assert "converted: s27" in captured.err
