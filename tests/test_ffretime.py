"""Tests for flop-level retiming (the movable-master extension)."""

import pytest

from repro.netlist import Gate, GateType, Netlist, NetlistBuilder, validate
from repro.retime.ffretime import (
    _collapse_flops,
    apply_ff_retiming,
    ff_retime_min_area,
)


def pipeline_netlist(library):
    """in -> inv1 -> FF -> inv2 -> FF -> out, plus a mergeable pair."""
    builder = NetlistBuilder("pipe", library)
    builder.input("a")
    builder.gate("inv1", "INV", ["a"])
    builder.flop("r1", "inv1")
    builder.gate("inv2", "INV", ["r1"])
    builder.flop("r2", "inv2")
    builder.output("y", "r2")
    return builder.build()


def mergeable_netlist(library):
    """Two flops feeding one AND: retiming can merge them after it."""
    builder = NetlistBuilder("merge", library)
    builder.input("a")
    builder.input("b")
    builder.gate("g1", "INV", ["a"])
    builder.gate("g2", "INV", ["b"])
    builder.flop("r1", "g1")
    builder.flop("r2", "g2")
    builder.gate("g3", "AND", ["r1", "r2"])
    builder.output("y", "g3")
    return builder.build()


class TestCollapse:
    def test_pipeline_edges(self, library):
        netlist = pipeline_netlist(library)
        edges, flop_driver = _collapse_flops(netlist)
        weights = {(e.tail, e.head): e.weight for e in edges}
        assert weights[("inv1", "inv2")] == 1
        assert weights[("inv2", "y")] == 1
        assert weights[("a", "inv1")] == 0
        assert flop_driver == {"r1": "inv1", "r2": "inv2"}

    def test_chained_flops_counted(self, library):
        netlist = Netlist("chain")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g", GateType.COMB, ("a",), cell="INV_X1"))
        netlist.add(Gate("f1", GateType.DFF, ("g",), cell="DFF_X1"))
        netlist.add(Gate("f2", GateType.DFF, ("f1",), cell="DFF_X1"))
        netlist.add(Gate("y", GateType.OUTPUT, ("f2",)))
        edges, _ = _collapse_flops(netlist)
        weights = {(e.tail, e.head): e.weight for e in edges}
        assert weights[("g", "y")] == 2


class TestApply:
    def test_identity_roundtrip(self, library):
        netlist = mergeable_netlist(library)
        edges, _ = _collapse_flops(netlist)
        rebuilt = apply_ff_retiming(
            netlist, library, edges, {n: 0 for n in netlist.names()}
        )
        validate(rebuilt, library)
        assert len(rebuilt.flops()) == len(netlist.flops())

    def test_forward_merge_reduces_flops(self, library):
        """r(g3) = -1 pulls both input flops through the AND gate."""
        netlist = mergeable_netlist(library)
        edges, _ = _collapse_flops(netlist)
        rebuilt = apply_ff_retiming(netlist, library, edges, {"g3": -1})
        validate(rebuilt, library)
        assert len(rebuilt.flops()) == 1  # merged behind g3

    def test_illegal_negative_edge_rejected(self, library):
        netlist = mergeable_netlist(library)
        edges, _ = _collapse_flops(netlist)
        with pytest.raises(ValueError, match="illegal"):
            # Moving a flop backward through g1 (r = +1) starves the
            # zero-weight a -> g1 edge.
            apply_ff_retiming(netlist, library, edges, {"g3": -2})


class TestMinArea:
    def test_merge_found_automatically(self, library):
        netlist = mergeable_netlist(library)
        result = ff_retime_min_area(netlist, library, period=10.0)
        assert result.flops_after <= result.flops_before
        assert result.flops_after == 1
        validate(result.netlist, library)

    def test_timing_constraint_blocks_merge(self, library):
        """With a period below the post-merge register-free path, the
        constraint generation must keep flops apart."""
        netlist = mergeable_netlist(library)
        from repro.sta import TimingEngine

        engine = TimingEngine(netlist, library)
        tight = engine.worst_arrival() * 0.9
        result = ff_retime_min_area(netlist, library, period=tight)
        # Whatever it returns must be timing-legal at the period.
        check = TimingEngine(result.netlist, library)
        assert check.worst_arrival() <= max(
            tight, engine.worst_arrival()
        ) + 1e-9

    def test_generated_circuit_legal(self, small_netlist, library):
        from repro.sta import TimingEngine

        engine = TimingEngine(small_netlist, library)
        period = engine.worst_arrival() * 1.05
        result = ff_retime_min_area(
            small_netlist.copy(), library, period=period
        )
        validate(result.netlist, library)
        assert result.flops_after <= result.flops_before
        check = TimingEngine(result.netlist, library)
        assert check.worst_arrival() <= period * 1.02

    def test_never_worsens_flop_count(self, s1196, library):
        from repro.sta import TimingEngine

        engine = TimingEngine(s1196, library)
        period = engine.worst_arrival() * 1.05
        result = ff_retime_min_area(s1196.copy(), library, period=period)
        assert result.flops_after <= result.flops_before
