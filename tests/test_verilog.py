"""Tests for structural Verilog I/O."""

import io

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cells import default_library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.netlist import Gate, GateType, Netlist, validate
from repro.netlist.verilog import (
    VerilogError,
    parse_verilog,
    verilog_text,
    write_verilog,
)

LIBRARY = default_library()

SEEDS = st.integers(min_value=1, max_value=10**6)
SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestWriter:
    def test_module_shape(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        assert text.startswith("module tiny (")
        assert "endmodule" in text
        assert "input clk;" in text
        assert ".CK(clk)" in text

    def test_instances_name_cells(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        assert "NAND2_X1 u_g1" in text
        assert "DFF_X1 u_f1" in text
        assert "assign y = g4;" in text


class TestRoundTrip:
    def test_tiny_roundtrip(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        again = parse_verilog(text, library)
        assert again.stats() == tiny_netlist.stats()
        for gate in tiny_netlist:
            assert gate.name in again
            assert again[gate.name].fanins == gate.fanins
            assert again[gate.name].cell == gate.cell
        validate(again, library)

    def test_generated_roundtrip(self, small_netlist, library):
        text = verilog_text(small_netlist, library)
        again = parse_verilog(io.StringIO(text), library)
        assert again.stats() == small_netlist.stats()
        # Cell choices (drive strengths) survive the round trip.
        for gate in small_netlist.comb_gates():
            assert again[gate.name].cell == gate.cell

    def test_roundtrip_preserves_timing(self, small_netlist, library):
        from repro.sta import TimingEngine

        text = verilog_text(small_netlist, library)
        again = parse_verilog(text, library)
        a = TimingEngine(small_netlist, library).worst_arrival()
        b = TimingEngine(again, library).worst_arrival()
        assert a == pytest.approx(b)


class TestParserErrors:
    def test_no_module(self, library):
        with pytest.raises(VerilogError, match="module"):
            parse_verilog("wire x;", library)

    def test_missing_endmodule(self, library):
        with pytest.raises(VerilogError, match="endmodule"):
            parse_verilog("module m (a); input a;", library)

    def test_unknown_cell(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y;\n"
            "FROB_X9 u1 (.A(a), .Z(n));\nassign y = n;\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="unknown cell"):
            parse_verilog(text, library)

    def test_missing_pin(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y;\n"
            "wire n;\nNAND2_X1 u1 (.A(a), .Z(n));\n"
            "assign y = n;\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="missing pin"):
            parse_verilog(text, library)

    def test_undriven_output(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y;\n"
            "endmodule\n"
        )
        with pytest.raises(VerilogError, match="no assign driver"):
            parse_verilog(text, library)

    def test_comments_stripped(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        text = "// header comment\n/* block\ncomment */\n" + text
        again = parse_verilog(text, library)
        assert again.stats() == tiny_netlist.stats()


class TestWriterArity:
    """Regression: arity mismatches used to be silently truncated.

    ``zip(cell.inputs, gate.fanins)`` stopped at the shorter list, so a
    3-pin cell on a 2-fanin gate emitted legal-looking Verilog with a
    floating pin.  The writer must refuse instead, naming the gate and
    both arities.
    """

    @staticmethod
    def _netlist_with(cell, n_fanins):
        netlist = Netlist("bad")
        fanins = tuple(f"a{i}" for i in range(n_fanins))
        for name in fanins:
            netlist.add(Gate(name, GateType.INPUT))
        netlist.add(Gate("g", GateType.COMB, fanins, cell=cell))
        netlist.add(Gate("y", GateType.OUTPUT, ("g",)))
        return netlist

    def test_cell_wider_than_gate_rejected(self, library):
        netlist = self._netlist_with("NAND3_X1", 2)
        with pytest.raises(
            VerilogError,
            match="has 3 input pins but the gate has 2 fanins",
        ):
            verilog_text(netlist, library)

    def test_gate_wider_than_cell_rejected(self, library):
        netlist = self._netlist_with("INV_X1", 2)
        with pytest.raises(
            VerilogError,
            match="has 1 input pins but the gate has 2 fanins",
        ):
            verilog_text(netlist, library)

    def test_error_names_gate_and_cell(self, library):
        netlist = self._netlist_with("NAND3_X1", 2)
        with pytest.raises(VerilogError, match="'g'.*'NAND3_X1'"):
            verilog_text(netlist, library)

    def test_matching_arity_still_writes(self, library):
        netlist = self._netlist_with("NAND2_X1", 2)
        assert "NAND2_X1 u_g" in verilog_text(netlist, library)


class TestParserDuplicates:
    HEADER = "module m (a, y, clk); input a; input clk; output y;\n"

    def test_duplicate_input_declaration(self, library):
        text = (
            "module m (a, y, clk); input a; input a; input clk; "
            "output y;\nassign y = a;\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="input 'a' declared twice"):
            parse_verilog(text, library)

    def test_duplicate_output_declaration(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y; "
            "output y;\nassign y = a;\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="output 'y' declared twice"):
            parse_verilog(text, library)

    def test_duplicate_assign_driver(self, library):
        text = (
            self.HEADER
            + "assign y = a;\nassign y = a;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError, match="net 'y' has two assign drivers"
        ):
            parse_verilog(text, library)

    def test_duplicate_instance_output_names_both(self, library):
        text = (
            self.HEADER
            + "wire n;\n"
            + "INV_X1 u1 (.A(a), .Z(n));\n"
            + "INV_X1 u2 (.A(a), .Z(n));\n"
            + "assign y = n;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError,
            match="instance 'u2' drives net 'n', already driven by "
                  "instance 'u1'",
        ):
            parse_verilog(text, library)

    def test_instance_driving_input_port_rejected(self, library):
        text = (
            self.HEADER
            + "INV_X1 u1 (.A(a), .Z(a));\n"
            + "assign y = a;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError, match="already driven by input port"
        ):
            parse_verilog(text, library)

    def test_output_already_driven_names_instance(self, library):
        text = (
            self.HEADER
            + "INV_X1 u1 (.A(a), .Z(y));\n"
            + "assign y = a;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError,
            match="output 'y' is already driven by instance 'u1'",
        ):
            parse_verilog(text, library)


class TestParserReferences:
    HEADER = "module m (a, y, clk); input a; input clk; output y;\n"

    def test_unknown_comb_pin_named(self, library):
        text = (
            self.HEADER
            + "wire n;\n"
            + "NAND2_X1 u1 (.A(a), .B(a), .Q(a), .Z(n));\n"
            + "assign y = n;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError,
            match="instance 'u1': cell 'NAND2_X1' has no pin 'Q'",
        ):
            parse_verilog(text, library)

    def test_unknown_flop_pin_named(self, library):
        text = (
            self.HEADER
            + "wire n;\n"
            + "DFF_X1 u1 (.D(a), .CK(clk), .R(a), .Q(n));\n"
            + "assign y = n;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError,
            match="instance 'u1': cell 'DFF_X1' has no pin 'R'",
        ):
            parse_verilog(text, library)

    def test_undriven_fanin_names_instance(self, library):
        # A raw KeyError from the topological rebuild used to name
        # neither the instance nor the net.
        text = (
            self.HEADER
            + "wire n;\n"
            + "INV_X1 u1 (.A(ghost), .Z(n));\n"
            + "assign y = n;\nendmodule\n"
        )
        with pytest.raises(
            VerilogError,
            match="instance 'u1' reads net 'ghost', which nothing drives",
        ):
            parse_verilog(text, library)

    def test_undriven_assign_names_output(self, library):
        text = self.HEADER + "assign y = ghost;\nendmodule\n"
        with pytest.raises(
            VerilogError,
            match="output 'y' reads net 'ghost', which nothing drives",
        ):
            parse_verilog(text, library)


class TestRoundTripHypothesis:
    @given(SEEDS)
    @SLOW
    def test_exact_roundtrip(self, seed):
        spec = CloudSpec(
            name=f"hv{seed}",
            seed=seed,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=60,
            depth=5,
            critical_fraction=0.25,
        )
        netlist = generate_circuit(spec, LIBRARY)
        text = verilog_text(netlist, LIBRARY)
        again = parse_verilog(text, LIBRARY)
        assert again.stats() == netlist.stats()
        for gate in netlist:
            assert again[gate.name].fanins == gate.fanins
            assert again[gate.name].cell == gate.cell
        # Writing the re-parsed netlist reproduces the text verbatim.
        assert verilog_text(again, LIBRARY) == text


class TestRoundTripProperty:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_random_circuits_roundtrip(self, seed, library):
        from repro.circuits.generator import CloudSpec, generate_circuit

        spec = CloudSpec(
            name=f"v{seed}",
            seed=seed,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=70,
            depth=5,
            critical_fraction=0.2,
        )
        netlist = generate_circuit(spec, library)
        again = parse_verilog(verilog_text(netlist, library), library)
        assert again.stats() == netlist.stats()
        for gate in netlist:
            assert again[gate.name].fanins == gate.fanins
