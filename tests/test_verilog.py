"""Tests for structural Verilog I/O."""

import io

import pytest

from repro.netlist import validate
from repro.netlist.verilog import (
    VerilogError,
    parse_verilog,
    verilog_text,
    write_verilog,
)


class TestWriter:
    def test_module_shape(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        assert text.startswith("module tiny (")
        assert "endmodule" in text
        assert "input clk;" in text
        assert ".CK(clk)" in text

    def test_instances_name_cells(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        assert "NAND2_X1 u_g1" in text
        assert "DFF_X1 u_f1" in text
        assert "assign y = g4;" in text


class TestRoundTrip:
    def test_tiny_roundtrip(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        again = parse_verilog(text, library)
        assert again.stats() == tiny_netlist.stats()
        for gate in tiny_netlist:
            assert gate.name in again
            assert again[gate.name].fanins == gate.fanins
            assert again[gate.name].cell == gate.cell
        validate(again, library)

    def test_generated_roundtrip(self, small_netlist, library):
        text = verilog_text(small_netlist, library)
        again = parse_verilog(io.StringIO(text), library)
        assert again.stats() == small_netlist.stats()
        # Cell choices (drive strengths) survive the round trip.
        for gate in small_netlist.comb_gates():
            assert again[gate.name].cell == gate.cell

    def test_roundtrip_preserves_timing(self, small_netlist, library):
        from repro.sta import TimingEngine

        text = verilog_text(small_netlist, library)
        again = parse_verilog(text, library)
        a = TimingEngine(small_netlist, library).worst_arrival()
        b = TimingEngine(again, library).worst_arrival()
        assert a == pytest.approx(b)


class TestParserErrors:
    def test_no_module(self, library):
        with pytest.raises(VerilogError, match="module"):
            parse_verilog("wire x;", library)

    def test_missing_endmodule(self, library):
        with pytest.raises(VerilogError, match="endmodule"):
            parse_verilog("module m (a); input a;", library)

    def test_unknown_cell(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y;\n"
            "FROB_X9 u1 (.A(a), .Z(n));\nassign y = n;\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="unknown cell"):
            parse_verilog(text, library)

    def test_missing_pin(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y;\n"
            "wire n;\nNAND2_X1 u1 (.A(a), .Z(n));\n"
            "assign y = n;\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="missing pin"):
            parse_verilog(text, library)

    def test_undriven_output(self, library):
        text = (
            "module m (a, y, clk); input a; input clk; output y;\n"
            "endmodule\n"
        )
        with pytest.raises(VerilogError, match="no assign driver"):
            parse_verilog(text, library)

    def test_comments_stripped(self, tiny_netlist, library):
        text = verilog_text(tiny_netlist, library)
        text = "// header comment\n/* block\ncomment */\n" + text
        again = parse_verilog(text, library)
        assert again.stats() == tiny_netlist.stats()


class TestRoundTripProperty:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_random_circuits_roundtrip(self, seed, library):
        from repro.circuits.generator import CloudSpec, generate_circuit

        spec = CloudSpec(
            name=f"v{seed}",
            seed=seed,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=70,
            depth=5,
            critical_fraction=0.2,
        )
        netlist = generate_circuit(spec, library)
        again = parse_verilog(verilog_text(netlist, library), library)
        assert again.stats() == netlist.stats()
        for gate in netlist:
            assert again[gate.name].fanins == gate.fanins
