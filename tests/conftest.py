"""Shared fixtures for the test suite."""

import pytest

from repro.cells import default_library
from repro.circuits import build_benchmark
from repro.circuits.fig4 import fig4_circuit, fig4_netlist, fig4_scheme
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.flows import prepare_circuit
from repro.netlist import NetlistBuilder


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def library_c2():
    return default_library(edl_overhead=2.0)


@pytest.fixture()
def fig4():
    """The paper's worked example as a TwoPhaseCircuit."""
    return fig4_circuit()


@pytest.fixture(scope="session")
def tiny_netlist(library):
    """A 6-gate circuit with one flop, for hand-checked timing."""
    builder = NetlistBuilder("tiny", library)
    for name in ("a", "b", "c"):
        builder.input(name)
    builder.gate("g1", "NAND", ["a", "b"])
    builder.gate("g2", "XOR", ["g1", "c"])
    builder.gate("g3", "INV", ["g2"])
    builder.flop("f1", "g3")
    builder.gate("g4", "AND", ["f1", "a"])
    builder.output("y", "g4")
    return builder.build()


@pytest.fixture(scope="session")
def small_spec():
    return CloudSpec(
        name="unit",
        seed=7,
        n_inputs=6,
        n_outputs=4,
        n_flops=10,
        n_gates=120,
        depth=7,
        critical_fraction=0.3,
    )


@pytest.fixture(scope="session")
def small_netlist(small_spec, library):
    """A generated ~120-gate circuit shared across tests."""
    return generate_circuit(small_spec, library)


@pytest.fixture(scope="session")
def small_prepared(small_netlist, library):
    """(scheme, circuit) for the shared small netlist."""
    return prepare_circuit(small_netlist.copy(), library)


@pytest.fixture(scope="session")
def s1196(library):
    return build_benchmark("s1196", library)
