"""Regression tests for the STA engine bug-fix sweep.

Each test here pins a defect the pre-fix engine exhibited:

* ``max()`` / dict-lookup crashes on malformed connectivity surfaced
  as bare ``ValueError`` / ``KeyError`` instead of a typed
  :class:`~repro.errors.TimingError` naming the gate;
* the rise/fall forward DP silently propagated ``-inf`` arrivals for
  gates unreachable under the transition edges;
* ``_compute_backward_to`` re-materialized the reverse topological
  order (and scanned the whole netlist) once per endpoint.
"""

import math

import pytest

from repro.errors import TimingError
from repro.netlist.netlist import Gate, GateType, Netlist
from repro.sta import TimingEngine
from repro.sta.delay_models import PathBasedCalculator

NEG_INF = float("-inf")


def _unvalidated_gate(name, gtype, fanins=(), cell=None):
    """A Gate bypassing __post_init__, as a hostile parser could make."""
    gate = object.__new__(Gate)
    object.__setattr__(gate, "name", name)
    object.__setattr__(gate, "gtype", gtype)
    object.__setattr__(gate, "fanins", tuple(fanins))
    object.__setattr__(gate, "cell", cell)
    return gate


class TestForwardTypedErrors:
    """Bugfix 1: bare ValueError/KeyError -> TimingError naming the gate."""

    def test_endpoint_with_no_fanins_names_the_endpoint(self, library):
        netlist = Netlist("degenerate")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(_unvalidated_gate("po", GateType.OUTPUT, ()))
        engine = TimingEngine(netlist, library)
        # Pre-fix: ValueError("max() arg is an empty sequence").
        with pytest.raises(TimingError, match="po"):
            engine.endpoint_arrival("po")

    def test_gate_reading_an_endpoint_names_both(self, library, tiny_netlist):
        netlist = tiny_netlist.copy("bad-wiring")
        cell = netlist["g1"].cell
        # A comb gate reading the PO marker: no forward arrival exists
        # for "y", so the forward DP used to die with a bare KeyError.
        netlist.add(Gate("bad", GateType.COMB, ("y",), cell=cell))
        engine = TimingEngine(netlist, library, model="gate")
        with pytest.raises(TimingError, match="bad") as info:
            engine.forward_arrival("bad")
        assert "y" in str(info.value)
        assert info.value.payload.get("gate") == "bad"

    def test_rf_gate_reading_an_endpoint_is_typed_too(
        self, library, tiny_netlist
    ):
        netlist = tiny_netlist.copy("bad-wiring-rf")
        cell = netlist["g1"].cell
        netlist.add(Gate("bad", GateType.COMB, ("y",), cell=cell))
        engine = TimingEngine(netlist, library, model="path")
        with pytest.raises(TimingError, match="bad"):
            engine.forward_arrival("bad")

    def test_valid_netlist_unaffected(self, library, tiny_netlist):
        engine = TimingEngine(tiny_netlist, library)
        arrival = engine.endpoint_arrival("y")
        assert math.isfinite(arrival) and arrival > 0


class _EdgelessCalculator(PathBasedCalculator):
    """Path-based calculator whose edges into one sink all vanish."""

    def __init__(self, netlist, library, starve_sink):
        super().__init__(netlist, library)
        self.starve_sink = starve_sink

    def transition_edges(self, driver, sink):
        if sink == self.starve_sink:
            return []
        return super().transition_edges(driver, sink)


class TestRiseFallUnreachable:
    """Bugfix 2: -inf arrivals must raise, not poison downstream max()."""

    def test_unreachable_gate_raises_timing_error(
        self, library, tiny_netlist
    ):
        calc = _EdgelessCalculator(tiny_netlist, library, starve_sink="g2")
        engine = TimingEngine(tiny_netlist, library, calculator=calc)
        with pytest.raises(TimingError, match="g2"):
            engine.forward_arrival("g2")

    def test_no_silent_neg_inf_in_forward_table(self, library, tiny_netlist):
        calc = _EdgelessCalculator(tiny_netlist, library, starve_sink="g2")
        engine = TimingEngine(tiny_netlist, library, calculator=calc)
        # Pre-fix, the table materialized with g2 (and its fanout cone)
        # at -inf and queries on *other* gates quietly succeeded.
        with pytest.raises(TimingError):
            engine.forward_arrival("g3")

    def test_partial_state_reachability_still_works(
        self, library, tiny_netlist
    ):
        engine = TimingEngine(tiny_netlist, library, model="path")
        for gate in tiny_netlist.endpoints():
            assert math.isfinite(engine.endpoint_arrival(gate.name))


class TestBackwardTopoCache:
    """Bugfix 4: reverse topo order cached, scan restricted to the cone."""

    def test_topo_order_not_rebuilt_per_endpoint(self, library, tiny_netlist):
        netlist = tiny_netlist.copy("topo-count")
        engine = TimingEngine(netlist, library)
        endpoints = [g.name for g in netlist.endpoints()]
        assert len(endpoints) >= 2
        # Warm every non-backward cache (slews, forward table, first
        # backward table), then count topo_order() calls.
        engine.forward_arrival("g1")
        engine.backward_delay("g1", endpoints[0])
        calls = 0
        original = netlist.topo_order

        def counting():
            nonlocal calls
            calls += 1
            return original()

        netlist.topo_order = counting
        try:
            for endpoint in endpoints[1:]:
                engine.backward_delay("g1", endpoint)
            engine.max_backward("g1")
        finally:
            netlist.topo_order = original
        # Pre-fix: one list(reversed(topo_order())) per endpoint query.
        assert calls == 0

    def test_cache_invalidated_with_the_rest(self, library, tiny_netlist):
        netlist = tiny_netlist.copy("topo-invalidate")
        engine = TimingEngine(netlist, library)
        endpoint = netlist.endpoints()[0].name
        before = engine.backward_delay("g1", endpoint)
        assert engine._reverse_topo_cache is not None
        engine.invalidate()
        assert engine._reverse_topo_cache is None
        assert engine.backward_delay("g1", endpoint) == before

    def test_cone_restricted_scan_matches_brute_force(
        self, library, tiny_netlist
    ):
        engine = TimingEngine(tiny_netlist, library)
        calc = engine.calculator

        def brute(name, endpoint):
            """Longest delay from `name`'s output to `endpoint`."""
            if name == endpoint:
                return 0.0
            best = NEG_INF
            for user in tiny_netlist.fanouts(name):
                if user == endpoint:
                    best = max(best, 0.0)
                    continue
                gate = tiny_netlist[user]
                if gate.gtype in (GateType.OUTPUT, GateType.DFF):
                    continue
                downstream = brute(user, endpoint)
                if downstream != NEG_INF:
                    best = max(
                        best, calc.edge_delay(name, user) + downstream
                    )
            return best

        for endpoint in (g.name for g in tiny_netlist.endpoints()):
            for gate in tiny_netlist:
                if gate.gtype is GateType.OUTPUT:
                    continue
                got = engine.backward_delay(gate.name, endpoint)
                assert got == pytest.approx(brute(gate.name, endpoint))
