"""Tests for the retiming core: regions, cut sets, graph, solvers."""

from fractions import Fraction

import pytest

from repro.circuits.fig4 import fig4_circuit
from repro.latches import HOST, SlavePlacement
from repro.retime import (
    EndpointClass,
    base_retime,
    build_retiming_graph,
    compute_cut_sets,
    compute_regions,
    grar_retime,
    solve_retiming_flow,
    solve_retiming_lp,
)
from repro.retime.cutset import compute_cut_set
from repro.retime.graph import EdgeKind, endpoint_node, mirror_name, pseudo_name
from repro.retime.netflow import build_demands, build_demands_paper_form
from repro.retime.regions import InfeasibleRetimingError
from repro.clocks import ClockScheme
from repro.latches.resilient import TwoPhaseCircuit
from repro.sta.delay_models import FixedDelayCalculator
from repro.circuits.fig4 import FIG4_DELAYS, fig4_netlist


class TestRegions:
    def test_fig4_partition(self, fig4):
        regions = compute_regions(fig4)
        assert set(regions.vm) == {"I1"}
        assert set(regions.vn) == {"G7", "G8"}
        assert set(regions.vr) == {"I2", "G3", "G4", "G5", "G6"}

    def test_bounds(self, fig4):
        regions = compute_regions(fig4)
        assert regions.bounds("I1") == (-1, -1)
        assert regions.bounds("G7") == (0, 0)
        assert regions.bounds("G4") == (-1, 0)

    @staticmethod
    def _conflicted_circuit():
        """G6 has D^f = 7 and D^b = 2: with forward limit 1.5 and
        backward limit 1.3 it violates both (6) and (7)."""
        netlist = fig4_netlist()
        calc = FixedDelayCalculator(netlist, FIG4_DELAYS)
        tight = ClockScheme(0.5, 0.5, 0.5, 0.3)
        return TwoPhaseCircuit(
            netlist, tight, calculator=calc, zero_latch_delays=True
        )

    def test_conflict_raises(self):
        """A clock too tight for any legal cut must be rejected."""
        with pytest.raises(InfeasibleRetimingError):
            compute_regions(self._conflicted_circuit())

    def test_conflict_prefer_vm(self):
        regions = compute_regions(
            self._conflicted_circuit(), conflict_policy="prefer-vm"
        )
        assert not (set(regions.vm) & set(regions.vn))

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            compute_regions(
                self._conflicted_circuit(), conflict_policy="shrug"
            )


class TestCutSets:
    def test_fig4_g_o9_matches_paper(self, fig4):
        """Section IV-A: g(O9) = {G5, G6}."""
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        assert cuts["O9"].kind is EndpointClass.TARGET
        assert set(cuts["O9"].gates) == {"G5", "G6"}

    def test_fig4_o10_never(self, fig4):
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        assert cuts["O10"].kind is EndpointClass.NEVER
        assert not cuts["O10"].is_target

    def test_always_under_tight_limit(self, fig4):
        """With the bound pulled below every reachable position's
        arrival, the remaining frontier sits inside Vn (unretimable) —
        the credit is unreachable and O9 classifies ALWAYS."""
        regions = compute_regions(fig4)
        cut = compute_cut_set(fig4, regions, "O9", limit=5.0)
        assert cut.kind is EndpointClass.ALWAYS

    def test_generous_limit_never(self, fig4):
        regions = compute_regions(fig4)
        cut = compute_cut_set(fig4, regions, "O9", limit=100.0)
        assert cut.kind is EndpointClass.NEVER

    def test_cut_separates_endpoint_from_sources(self, fig4):
        """Every path from a source to the target crosses g(t)."""
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        gates = set(cuts["O9"].gates)
        netlist = fig4.netlist

        def reaches_without_cut(node):
            if node in gates:
                return False
            gate = netlist[node]
            if gate.is_source:
                return True
            return any(reaches_without_cut(d) for d in gate.fanins)

        assert not reaches_without_cut("G8")


class TestRetimingGraph:
    def test_fig4_structure_matches_fig5(self, fig4):
        """Fig. 5 shows mirror nodes for I2 and G3 and pseudo P(O9)."""
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        graph = build_retiming_graph(fig4, regions, cuts, overhead=2.0)
        assert mirror_name("I2") in graph.bounds
        assert mirror_name("G3") in graph.bounds
        assert mirror_name("I1") not in graph.bounds  # single fanout
        assert pseudo_name("O9") in graph.bounds
        assert pseudo_name("O10") not in graph.bounds  # not a target

    def test_host_edges_weight_one(self, fig4):
        regions = compute_regions(fig4)
        graph = build_retiming_graph(fig4, regions)
        host_edges = [e for e in graph.edges if e.kind is EdgeKind.HOST]
        assert len(host_edges) == 2
        assert all(e.weight == 1 and e.breadth == 1 for e in host_edges)

    def test_cut_and_credit_edges(self, fig4):
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        graph = build_retiming_graph(fig4, regions, cuts, overhead=2.0)
        cut_edges = [e for e in graph.edges if e.kind is EdgeKind.CUT]
        assert {e.tail for e in cut_edges} == {"G5", "G6"}
        credit = [e for e in graph.edges if e.kind is EdgeKind.CREDIT]
        assert len(credit) == 1
        assert credit[0].breadth == Fraction(-2)

    def test_no_credits_without_overhead(self, fig4):
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        graph = build_retiming_graph(fig4, regions, cuts, overhead=0.0)
        assert not graph.pseudo_nodes

    def test_mirror_share_breadths(self, fig4):
        regions = compute_regions(fig4)
        graph = build_retiming_graph(fig4, regions)
        shares = [
            e.breadth
            for e in graph.edges
            if e.kind is EdgeKind.CIRCUIT and e.tail == "I2"
        ]
        assert shares == [Fraction(1, 2), Fraction(1, 2)]

    def test_demands_match_paper_form(self, fig4):
        """Generic X(v) = -B(v) equals the eq. (14) per-type formulas."""
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        graph = build_retiming_graph(fig4, regions, cuts, overhead=2.0)
        assert build_demands(graph) == build_demands_paper_form(graph)

    def test_demands_balance(self, fig4):
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        graph = build_retiming_graph(fig4, regions, cuts, overhead=1.0)
        assert sum(build_demands(graph).values()) == 0

    def test_objective_value_of_known_cuts(self, fig4):
        regions = compute_regions(fig4)
        cuts = compute_cut_sets(fig4, regions)
        graph = build_retiming_graph(fig4, regions, cuts, overhead=2.0)
        # Cut2 with the credit taken: 3 latches - 2 credit = 1.
        r = {n: 0 for n in graph.nodes}
        for name in ("I1", "I2", "G3", "G4", "G5", "G6",
                     mirror_name("I2"), mirror_name("G3"),
                     pseudo_name("O9")):
            r[name] = -1
        assert graph.check_feasible(r) == []
        assert graph.objective_value(r) == 1

    def test_dff_role_split(self, tiny_netlist, library):
        from repro.flows import prepare_circuit

        _, circuit = prepare_circuit(tiny_netlist.copy(), library)
        regions = compute_regions(circuit)
        graph = build_retiming_graph(circuit, regions)
        assert "f1" in graph.bounds
        assert endpoint_node("f1") in graph.bounds
        assert graph.bounds[endpoint_node("f1")] == (0, 0)


class TestSolvers:
    def test_flow_matches_lp_on_fig4(self, fig4):
        for overhead in (0.5, 1.0, 2.0):
            regions = compute_regions(fig4)
            cuts = compute_cut_sets(fig4, regions)
            graph = build_retiming_graph(fig4, regions, cuts, overhead)
            lp = solve_retiming_lp(graph)
            flow = solve_retiming_flow(graph)
            assert flow.objective == lp.objective

    def test_flow_matches_lp_on_generated(self, small_prepared):
        _, circuit = small_prepared
        regions = compute_regions(circuit)
        cuts = compute_cut_sets(circuit, regions)
        graph = build_retiming_graph(circuit, regions, cuts, overhead=1.0)
        lp = solve_retiming_lp(graph)
        flow = solve_retiming_flow(graph)
        assert flow.objective == lp.objective

    def test_grar_fig4_finds_cut2(self, fig4):
        """The paper's ILP solution: everything through G6/G5/G4."""
        result = grar_retime(fig4, overhead=2.0)
        assert result.placement.retimed == {
            "I1", "I2", "G3", "G4", "G5", "G6"
        }
        assert result.n_slaves == 3
        assert result.edl_endpoints == set()
        assert result.credited_endpoints == {"O9"}
        assert result.cost.latch_units == pytest.approx(5.0)

    def test_base_fig4_finds_cut1(self, fig4):
        """The timing-driven baseline cannot rescue O9 (its cut needs
        the credit tradeoff) — wait, it CAN: forced cuts at Pi."""
        result = base_retime(fig4, overhead=2.0)
        # Base forces g(O9) too (it can meet Pi), so slave count is 3.
        assert result.n_slaves in (2, 3)
        report = fig4.check_legality(result.placement)
        assert report.ok

    def test_grar_objective_no_worse_than_base(self, fig4):
        for overhead in (0.5, 1.0, 2.0):
            grar = grar_retime(fig4, overhead=overhead)
            base = base_retime(fig4, overhead=overhead)
            assert (
                grar.cost.latch_units
                <= base.cost.latch_units + 1e-9
            )

    def test_grar_legal_on_generated(self, small_prepared):
        _, circuit = small_prepared
        result = grar_retime(circuit, overhead=1.0)
        report = circuit.check_legality(result.placement)
        assert report.ok

    def test_credited_endpoints_are_non_edl(self, small_prepared):
        """A taken credit must guarantee the master leaves the window
        (the safe-region construction is sound)."""
        _, circuit = small_prepared
        result = grar_retime(circuit, overhead=2.0)
        edl = circuit.edl_endpoints(result.placement)
        assert not (result.credited_endpoints & edl)

    def test_negative_overhead_rejected(self, fig4):
        with pytest.raises(ValueError):
            grar_retime(fig4, overhead=-1.0)
        with pytest.raises(ValueError):
            base_retime(fig4, overhead=-1.0)

    def test_unknown_solver(self, fig4):
        with pytest.raises(ValueError):
            grar_retime(fig4, overhead=1.0, solver="quantum")

    def test_lp_solver_on_fig4(self, fig4):
        result = grar_retime(fig4, overhead=2.0, solver="lp")
        assert result.cost.latch_units == pytest.approx(5.0)
