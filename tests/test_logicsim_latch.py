"""Focused tests of the slave-latch waveform transform."""

import pytest

from repro.circuits.fig4 import fig4_circuit
from repro.errors import SimulationError
from repro.sim.logicsim import TimedSimulator, Waveform


@pytest.fixture()
def sim(small_prepared):
    _, circuit = small_prepared
    return TimedSimulator(circuit), circuit


class TestLatchTransform:
    def test_early_data_waits_for_opening(self, sim):
        simulator, circuit = sim
        t_open = circuit.scheme.slave_open
        wave = Waveform.step(0, 0.01, 1)  # changes long before opening
        out = simulator._latch_transform(wave, held=0)
        assert out.initial == 0
        assert out.events == [
            (t_open + circuit.latch_ck_q, 1)
        ]

    def test_held_value_before_opening(self, sim):
        simulator, circuit = sim
        wave = Waveform.step(1, 0.01, 1)  # input already 1
        out = simulator._latch_transform(wave, held=1)
        # Same as held: no transition at all.
        assert out.events == []

    def test_transparent_passthrough(self, sim):
        simulator, circuit = sim
        t_open = circuit.scheme.slave_open
        when = t_open + 0.3 * (
            circuit.scheme.slave_close - t_open
        )
        wave = Waveform(initial=0, events=[(when, 1)])
        out = simulator._latch_transform(wave, held=0)
        assert (when + circuit.latch_d_q, 1) in out.events

    def test_opaque_after_close(self, sim):
        simulator, circuit = sim
        t_close = circuit.scheme.slave_close
        wave = Waveform(initial=0, events=[(t_close + 0.01, 1)])
        out = simulator._latch_transform(wave, held=0)
        assert out.events == []  # dropped: latch already closed

    def test_glitch_through_transparency(self, sim):
        simulator, circuit = sim
        t_open = circuit.scheme.slave_open
        mid = (t_open + circuit.scheme.slave_close) / 2
        wave = Waveform(
            initial=0,
            events=[(mid, 1), (mid + 0.001, 0)],
        )
        out = simulator._latch_transform(wave, held=0)
        # Both transitions pass, delayed by D->Q.
        values = [v for _, v in out.events]
        assert values == [1, 0]


class TestFig4Simulation:
    def test_fig4_without_library_rejected(self):
        circuit = fig4_circuit()
        with pytest.raises(ValueError, match="library"):
            TimedSimulator(circuit)

    def test_event_cap_raises_instead_of_truncating(self, sim):
        simulator, circuit = sim
        simulator.max_events_per_net = 4
        # A pathological waveform with many input changes.
        gate = circuit.netlist.comb_gates()[0]
        waves = [
            Waveform(
                initial=0,
                events=[(0.001 * k, k % 2) for k in range(1, 40)],
            )
            for _ in gate.fanins
        ]
        # Truncating would silently drop the *latest* events — exactly
        # the ones that land in the resiliency window — so the
        # simulator refuses (see tests/test_sim_regressions.py).
        with pytest.raises(SimulationError, match=gate.name):
            simulator._evaluate_gate(gate, waves)


class TestPreemption:
    def test_reordered_events_cancel(self):
        """Unequal rise/fall delays must not leave stale transitions.

        Regression for a transport-delay bug: an OAI21 whose inputs
        rose in sequence scheduled its (slower) rising output *after*
        the (faster) falling one, leaving a phantom final 1.
        """
        from repro.sim.logicsim import _append_preempt

        events = []
        _append_preempt(events, 1.0, 1)
        _append_preempt(events, 0.9, 0)  # newer input, earlier effect
        assert events == [(0.9, 0)]

    def test_steady_state_matches_boolean_eval(self, small_prepared):
        """Every net's final value equals pure boolean evaluation,
        over many random vectors (the property the bug violated)."""
        import random

        from repro.latches import SlavePlacement
        from repro.sim import TimedSimulator

        _, circuit = small_prepared
        simulator = TimedSimulator(circuit)
        library = circuit.library
        rng = random.Random(123)
        for _ in range(50):
            launch = {
                g.name: rng.randint(0, 1)
                for g in circuit.netlist.sources()
            }
            waves = simulator.run_cycle(
                launch, SlavePlacement.initial(), {}
            )
            expected = dict(launch)
            for name in circuit.netlist.topo_order():
                gate = circuit.netlist[name]
                if not gate.is_comb:
                    continue
                cell = library[gate.cell]
                expected[name] = cell.evaluate(
                    [expected[f] for f in gate.fanins]
                )
                assert waves[name].final == expected[name], name
