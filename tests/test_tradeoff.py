"""Tests for the area/error-rate trade-off sweep."""

import pytest

from repro.flows import error_rate_tradeoff, run_flow
from repro.flows.tradeoff import TradeoffPoint


class TestTradeoff:
    def test_sweep_points(self, small_netlist, library, small_prepared):
        scheme, _ = small_prepared
        points = error_rate_tradeoff(
            small_netlist,
            library,
            overhead=1.0,
            budget_scales=(0.0, 2.0),
            scheme=scheme,
            cycles=24,
        )
        assert len(points) == 2
        assert points[0].budget_scale == 0.0
        # Budget never increases the EDL count.
        assert points[1].n_edl <= points[0].n_edl
        for point in points:
            assert 0.0 <= point.error_rate <= 100.0
            assert point.total_area > point.comb_area

    def test_zero_budget_equals_disabled_rescue(
        self, small_netlist, library, small_prepared
    ):
        scheme, _ = small_prepared
        zero = run_flow(
            "grar", small_netlist, library, 1.0,
            scheme=scheme, rescue_budget_scale=0.0,
        )
        assert zero.rescue is not None
        assert not zero.rescue.rescued

    def test_point_row(self):
        point = TradeoffPoint(1.0, 123.456, 100.0, 3, 12.345)
        assert point.row() == (1.0, 123.5, 100.0, 3, 12.35)
