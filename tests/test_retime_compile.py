"""Compiled G-RAR problems, warm-started sweeps, and bit-parity.

Covers the sweep-aware retiming tentpole:

* the c-independence invariant the cache is built on (regions, cut
  sets, and the non-credit edge set never change with ``c``);
* ``recost_graph`` reproducing ``build_retiming_graph`` exactly;
* the content fingerprint (copies collide, resizing misses);
* cache hit/miss + warm-start counters;
* the acceptance oracle: cache-on sweeps are bit-identical to the
  cache-off cold-start runs, for G-RAR, the baseline, and the VI-D
  trade-off curve;
* the ``_recost`` regression: re-costed live outcomes must re-cost
  their nested retiming result too.
"""

from fractions import Fraction

import pytest

from repro import metrics
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.flows import prepare_circuit
from repro.flows.tradeoff import error_rate_tradeoff
from repro.harness import ExperimentSuite
from repro.retime import (
    base_retime,
    build_retiming_graph,
    circuit_fingerprint,
    clear_cache,
    compile_retiming,
    compute_cut_sets,
    compute_regions,
    grar_retime,
    recost_graph,
)
from repro.retime.graph import EdgeKind

SWEEP = (0.5, 1.0, 2.0)

SPECS = [
    CloudSpec(
        name=f"compile{i}",
        seed=90 + i,
        n_inputs=5,
        n_outputs=4,
        n_flops=8,
        n_gates=60 + 20 * i,
        depth=6,
        critical_fraction=0.3,
    )
    for i in range(3)
]


@pytest.fixture(scope="module")
def circuits(library):
    """Three prepared TwoPhaseCircuits of different shapes."""
    out = []
    for spec in SPECS:
        netlist = generate_circuit(spec, library)
        _, circuit = prepare_circuit(netlist, library)
        out.append(circuit)
    return out


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _edge_key(edge):
    return (edge.tail, edge.head, edge.weight, edge.breadth, edge.kind)


class TestCIndependence:
    """Satellite: the invariant that justifies the compiled cache."""

    def test_regions_cut_sets_and_skeleton_do_not_depend_on_c(
        self, circuits
    ):
        for circuit in circuits:
            baseline = None
            for c in SWEEP:
                regions = compute_regions(circuit)
                cut_sets = compute_cut_sets(circuit, regions)
                graph = build_retiming_graph(
                    circuit, regions, cut_sets=cut_sets, overhead=c
                )
                non_credit = [
                    _edge_key(e)
                    for e in graph.edges
                    if e.kind is not EdgeKind.CREDIT
                ]
                credit = [
                    (e.tail, e.head, e.weight)
                    for e in graph.edges
                    if e.kind is EdgeKind.CREDIT
                ]
                breadths = {
                    e.breadth
                    for e in graph.edges
                    if e.kind is EdgeKind.CREDIT
                }
                # Every credit edge carries exactly -c...
                assert breadths == {-Fraction(c).limit_denominator(10**6)}
                snapshot = (
                    regions,
                    cut_sets,
                    list(graph.nodes),
                    non_credit,
                    credit,
                )
                if baseline is None:
                    baseline = snapshot
                else:
                    # ...and nothing else in the problem moves with c.
                    assert snapshot == baseline


class TestRecostGraph:
    def test_recost_reproduces_a_fresh_build(self, circuits):
        circuit = circuits[0]
        regions = compute_regions(circuit)
        cut_sets = compute_cut_sets(circuit, regions)
        skeleton = build_retiming_graph(
            circuit, regions, cut_sets=cut_sets, overhead=0.5
        )
        for c in SWEEP:
            fresh = build_retiming_graph(
                circuit, regions, cut_sets=cut_sets, overhead=c
            )
            patched = recost_graph(skeleton, c)
            assert list(patched.nodes) == list(fresh.nodes)
            assert [_edge_key(e) for e in patched.edges] == [
                _edge_key(e) for e in fresh.edges
            ]
            assert patched.bounds == fresh.bounds
            assert patched.pseudo_nodes == fresh.pseudo_nodes

    def test_same_overhead_returns_the_skeleton_itself(self, circuits):
        compiled = compile_retiming(circuits[0], 1.0)
        assert compiled.graph_for(1.0) is compiled.skeleton
        assert compiled.graph_for(2.0) is not compiled.skeleton

    def test_rejects_non_positive_overhead(self, circuits):
        compiled = compile_retiming(circuits[0], 1.0)
        with pytest.raises(ValueError):
            recost_graph(compiled.skeleton, 0.0)

    def test_rejects_skeleton_without_pseudo_nodes(self, circuits):
        circuit = circuits[0]
        regions = compute_regions(circuit)
        plain = build_retiming_graph(
            circuit, regions, cut_sets=None, overhead=0.0
        )
        with pytest.raises(ValueError):
            recost_graph(plain, 1.0)


class TestFingerprint:
    def test_copies_collide(self, circuits, library):
        spec = SPECS[0]
        rebuilt = generate_circuit(spec, library)
        _, twin = prepare_circuit(rebuilt, library)
        assert circuit_fingerprint(circuits[0]) == circuit_fingerprint(twin)

    def test_resizing_a_gate_changes_the_digest(self, circuits, library):
        spec = SPECS[0]
        netlist = generate_circuit(spec, library)
        _, circuit = prepare_circuit(netlist, library)
        before = circuit_fingerprint(circuit)
        gate = next(
            g
            for g in circuit.netlist.comb_gates()
            if g.cell and not g.cell.endswith("_X4")
        )
        bigger = gate.cell.rsplit("_X", 1)[0] + "_X4"
        assert bigger in library.cells
        circuit.netlist.replace_cell(gate.name, bigger)
        assert circuit_fingerprint(circuit) != before

    def test_conflict_policy_is_part_of_the_key(self, circuits):
        assert circuit_fingerprint(
            circuits[0], "error"
        ) != circuit_fingerprint(circuits[0], "prefer-vm")


class TestCompileCache:
    def test_miss_then_hits_across_the_sweep(self, circuits):
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            first = compile_retiming(circuits[0], 0.5)
            for c in SWEEP[1:]:
                assert compile_retiming(circuits[0], c) is first
        assert collector.counters["retime.compile.misses"] == 1
        assert collector.counters["retime.compile.hits"] == len(SWEEP) - 1

    def test_clear_cache_forces_a_rebuild(self, circuits):
        first = compile_retiming(circuits[0], 1.0)
        clear_cache()
        assert compile_retiming(circuits[0], 1.0) is not first

    def test_distinct_circuits_get_distinct_entries(self, circuits):
        entries = {compile_retiming(c, 1.0).fingerprint for c in circuits}
        assert len(entries) == len(circuits)


def _result_key(result):
    return (
        result.placement.retimed,
        result.objective,
        result.edl_endpoints,
        result.credited_endpoints,
        result.cost,
        result.n_slaves,
        result.n_edl,
    )


class TestSweepParity:
    """Acceptance: cache-on results == the cache-off cold oracle."""

    def test_grar_sweep_is_bit_identical_to_cold_runs(self, circuits):
        for circuit in circuits:
            clear_cache()
            collector = metrics.MetricsCollector()
            with metrics.collect_into(collector):
                warm = [
                    grar_retime(circuit, c, retime_cache=True)
                    for c in SWEEP
                ]
            cold = [
                grar_retime(circuit, c, retime_cache=False) for c in SWEEP
            ]
            for w, k in zip(warm, cold):
                assert _result_key(w) == _result_key(k)
                assert w.notes["retime_cache"] == "on"
                assert k.notes["retime_cache"] == "off"
            # The sweep compiled once and warm-started the rest.
            assert collector.counters["retime.compile.misses"] == 1
            assert collector.counters["retime.compile.hits"] == (
                len(SWEEP) - 1
            )
            assert collector.counters["simplex.warm_start"] == (
                len(SWEEP) - 1
            )
            assert collector.counters["simplex.basis_reused"] == (
                len(SWEEP) - 1
            )

    def test_base_retime_shares_the_compiled_problem(self, circuits):
        circuit = circuits[0]
        for c in SWEEP:
            clear_cache()
            cold = base_retime(circuit, c, retime_cache=False)
            grar_retime(circuit, c, retime_cache=True)  # seed the cache
            collector = metrics.MetricsCollector()
            with metrics.collect_into(collector):
                warm = base_retime(circuit, c, retime_cache=True)
            assert _result_key(warm) == _result_key(cold)
            assert collector.counters["retime.compile.hits"] == 1

    def test_warm_objective_survives_interleaved_circuits(self, circuits):
        """Sweeping two circuits alternately still reuses each one's
        own basis (the basis lives on the compiled entry, not on the
        solver)."""
        a, b = circuits[0], circuits[1]
        warm = {}
        for c in SWEEP:
            warm[("a", c)] = grar_retime(a, c, retime_cache=True)
            warm[("b", c)] = grar_retime(b, c, retime_cache=True)
        for name, circuit in (("a", a), ("b", b)):
            for c in SWEEP:
                cold = grar_retime(circuit, c, retime_cache=False)
                assert _result_key(warm[(name, c)]) == _result_key(cold)


class TestTradeoffParity:
    def test_budget_points_match_the_oracle(self, circuits, library):
        netlist = generate_circuit(SPECS[0], library)
        kwargs = dict(
            budget_scales=(0.0, 1.0),
            cycles=16,
            seed=7,
        )
        clear_cache()
        on = error_rate_tradeoff(
            netlist.copy(), library, 1.0, retime_cache=True, **kwargs
        )
        off = error_rate_tradeoff(
            netlist.copy(), library, 1.0, retime_cache=False, **kwargs
        )
        assert [p.row() for p in on] == [p.row() for p in off]
        assert [p.total_area for p in on] == [p.total_area for p in off]
        assert [p.n_edl for p in on] == [p.n_edl for p in off]


class TestRecostRegression:
    """Satellite: `_recost` must re-cost the nested retiming result.

    Pre-fix, a re-costed live ``FlowOutcome`` kept ``outcome.retiming``
    at the canonical ``c = 1.0``, so its ``sequential_area`` (and every
    summary line built from it) reported canonical areas under other
    overheads.
    """

    @pytest.fixture()
    def suite(self, library):
        suite = ExperimentSuite(circuits=["recost"], library=library)
        spec = CloudSpec(
            name="recost",
            seed=11,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=40,
            depth=5,
            critical_fraction=0.4,
        )
        suite._netlists["recost"] = generate_circuit(spec, library)
        return suite

    def test_live_outcome_recosts_nested_retiming(self, suite):
        recosted = suite.outcome("recost", "base", 2.0)
        assert recosted.overhead == 2.0
        assert recosted.cost.overhead == 2.0
        # The nested retiming result must carry the same overhead...
        assert recosted.retiming.overhead == 2.0
        assert recosted.retiming.cost.overhead == 2.0
        canonical = suite.outcome("recost", "base", 1.0)
        if canonical.retiming.n_edl:
            # ...and EDL masters must be priced at c=2, not c=1.
            assert (
                recosted.retiming.sequential_area
                > canonical.retiming.sequential_area
            )

    def test_recost_leaves_the_canonical_outcome_untouched(self, suite):
        suite.outcome("recost", "base", 0.5)
        canonical = suite.outcome("recost", "base", 1.0)
        assert canonical.overhead == 1.0
        assert canonical.retiming.overhead == 1.0
