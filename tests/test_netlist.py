"""Tests for the netlist model, builder, bench I/O and validation."""

import io

import pytest
from hypothesis import (
    HealthCheck,
    assume,
    given,
    settings as hyp_settings,
    strategies as st,
)

from repro.netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistBuilder,
    NetlistError,
    parse_bench,
    validate,
    write_bench,
)
from repro.cells import default_library
from repro.netlist.bench import BenchParseError, bench_text
from repro.netlist.validate import dangling_gates

_BENCH_LIBRARY = default_library()


class TestGate:
    def test_input_with_fanin_rejected(self):
        with pytest.raises(ValueError):
            Gate("a", GateType.INPUT, ("b",))

    def test_output_needs_one_fanin(self):
        with pytest.raises(ValueError):
            Gate("y", GateType.OUTPUT, ("a", "b"))

    def test_flop_needs_one_fanin(self):
        with pytest.raises(ValueError):
            Gate("f", GateType.DFF, ())

    def test_comb_needs_cell(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.COMB, ("a",))

    def test_roles(self):
        assert Gate("a", GateType.INPUT).is_source
        assert Gate("f", GateType.DFF, ("a",)).is_source
        assert Gate("f", GateType.DFF, ("a",)).is_flop
        assert not Gate("y", GateType.OUTPUT, ("a",)).is_source

    def test_with_cell(self):
        gate = Gate("g", GateType.COMB, ("a",), cell="INV_X1")
        swapped = gate.with_cell("INV_X2")
        assert swapped.cell == "INV_X2"
        assert swapped.fanins == gate.fanins


class TestNetlist:
    def test_duplicate_name_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            tiny_netlist.add(Gate("a", GateType.INPUT))

    def test_missing_driver_detected(self, library):
        netlist = Netlist("bad")
        netlist.add(Gate("g", GateType.COMB, ("ghost",), cell="INV_X1"))
        with pytest.raises(KeyError):
            netlist.topo_order()

    def test_fanouts(self, tiny_netlist):
        assert set(tiny_netlist.fanouts("a")) == {"g1", "g4"}
        assert tiny_netlist.fanouts("y") == ()

    def test_topo_order_sources_first(self, tiny_netlist):
        order = tiny_netlist.topo_order()
        for source in ("a", "b", "c", "f1"):
            assert order.index(source) < order.index("g4")
        assert order.index("g1") < order.index("g2") < order.index("g3")

    def test_comb_cycle_detected(self, library):
        netlist = Netlist("loop")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g1", GateType.COMB, ("a", "g2"), cell="NAND2_X1"))
        netlist.add(Gate("g2", GateType.COMB, ("g1",), cell="INV_X1"))
        with pytest.raises(ValueError, match="cycle"):
            netlist.topo_order()

    def test_flop_breaks_cycle(self, library):
        """Feedback through a flop is a legal FSM, not a comb loop."""
        netlist = Netlist("fsm")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g1", GateType.COMB, ("a", "f"), cell="NAND2_X1"))
        netlist.add(Gate("f", GateType.DFF, ("g1",), cell="DFF_X1"))
        netlist.topo_order()  # must not raise

    def test_sources_endpoints(self, tiny_netlist):
        assert {g.name for g in tiny_netlist.sources()} == {
            "a", "b", "c", "f1",
        }
        assert {g.name for g in tiny_netlist.endpoints()} == {"f1", "y"}

    def test_fanin_cone_stops_at_stage_boundary(self, tiny_netlist):
        cone = tiny_netlist.fanin_cone("y")
        assert "g4" in cone and "f1" in cone and "a" in cone
        # The cone must not cross the flop into the previous stage.
        assert "g3" not in cone

    def test_fanout_cone(self, tiny_netlist):
        cone = tiny_netlist.fanout_cone("g1")
        assert {"g1", "g2", "g3", "f1"} <= cone
        assert "g4" not in cone  # behind the flop

    def test_remove_in_use_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            tiny_netlist.copy().remove("g1")

    def test_remove_many_rejects_broken_refs(self, tiny_netlist):
        dup = tiny_netlist.copy()
        with pytest.raises(ValueError):
            dup.remove_many(["g1"])  # g2 still reads g1

    def test_remove_many_closed_set(self, library):
        netlist = Netlist("n")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g1", GateType.COMB, ("a",), cell="INV_X1"))
        netlist.add(Gate("g2", GateType.COMB, ("g1",), cell="INV_X1"))
        netlist.add(Gate("y", GateType.OUTPUT, ("a",)))
        netlist.remove_many(["g1", "g2"])
        assert len(netlist) == 2

    def test_replace_cell_keeps_connectivity(self, tiny_netlist):
        dup = tiny_netlist.copy()
        before = dup.fanouts("g1")
        dup.replace_cell("g1", "NAND2_X4")
        assert dup["g1"].cell == "NAND2_X4"
        assert dup.fanouts("g1") == before

    def test_areas(self, tiny_netlist, library):
        comb = tiny_netlist.comb_area(library)
        flop = tiny_netlist.flop_area(library)
        assert comb > 0 and flop == pytest.approx(
            library.default_flip_flop().area
        )
        assert tiny_netlist.total_area(library) == pytest.approx(comb + flop)

    def test_copy_is_independent(self, tiny_netlist):
        dup = tiny_netlist.copy("dup")
        dup.replace_cell("g1", "NAND2_X2")
        assert tiny_netlist["g1"].cell != "NAND2_X2"

    def test_stats(self, tiny_netlist):
        stats = tiny_netlist.stats()
        assert stats == {
            "inputs": 3,
            "outputs": 1,
            "flops": 1,
            "comb_gates": 4,
            "gates": 9,
        }


class TestBuilder:
    def test_tree_decomposition_wide_and(self, library):
        builder = NetlistBuilder("wide", library)
        names = [builder.input(f"i{k}") for k in range(7)]
        builder.gate("w", "AND", names)
        builder.output("y", "w")
        netlist = builder.build()
        # All helper gates feed the tree; functionality preserved.
        validate(netlist, library)
        assert len(netlist.comb_gates()) >= 3

    def test_tree_functionality(self, library):
        """A decomposed wide NAND must equal the boolean NAND."""
        from repro.cells.cell import evaluate_function

        builder = NetlistBuilder("func", library)
        names = [builder.input(f"i{k}") for k in range(5)]
        builder.gate("w", "NAND", names)
        builder.output("y", "w")
        netlist = builder.build()

        def simulate(values):
            signals = dict(zip(names, values))
            for gate_name in netlist.topo_order():
                gate = netlist[gate_name]
                if not gate.is_comb:
                    continue
                cell = library[gate.cell]
                signals[gate_name] = cell.evaluate(
                    [signals[f] for f in gate.fanins]
                )
            return signals["w"]

        for pattern in range(32):
            bits = [(pattern >> k) & 1 for k in range(5)]
            assert simulate(bits) == evaluate_function("NAND", bits)

    def test_single_input_variadic_becomes_buffer(self, library):
        builder = NetlistBuilder("buf", library)
        builder.input("a")
        builder.gate("g", "AND", ["a"])
        builder.output("y", "g")
        netlist = builder.build()
        assert library[netlist["g"].cell].function == "BUF"

    def test_unknown_function_rejected(self, library):
        builder = NetlistBuilder("bad", library)
        builder.input("a")
        with pytest.raises(ValueError):
            builder.gate("g", "FROB", ["a"])

    def test_builder_closes_after_build(self, library):
        builder = NetlistBuilder("done", library)
        builder.input("a")
        builder.output("y", "a")
        builder.build()
        with pytest.raises(RuntimeError):
            builder.input("b")

    def test_inv_arity_checked(self, library):
        builder = NetlistBuilder("bad", library)
        builder.input("a")
        builder.input("b")
        with pytest.raises(ValueError):
            builder.gate("g", "INV", ["a", "b"])


class TestBench:
    BENCH = """
# sample
INPUT(G0)
INPUT(G1)
OUTPUT(G7)
G5 = DFF(G7)
G6 = NAND(G0, G1)
G7 = NOR(G6, G5)
"""

    def test_parse(self, library):
        netlist = parse_bench(self.BENCH, library, name="sample")
        stats = netlist.stats()
        assert stats["inputs"] == 2
        assert stats["flops"] == 1
        assert stats["comb_gates"] == 2
        assert stats["outputs"] == 1

    def test_parse_from_stream(self, library):
        netlist = parse_bench(io.StringIO(self.BENCH), library)
        assert "G6" in netlist

    def test_roundtrip(self, library):
        netlist = parse_bench(self.BENCH, library, name="rt")
        text = bench_text(netlist)
        again = parse_bench(text, library, name="rt2")
        assert again.stats() == netlist.stats()
        assert {g.name for g in again.comb_gates()} == {
            g.name for g in netlist.comb_gates()
        }

    def test_wide_gates_decomposed(self, library):
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n" \
               "OUTPUT(w)\nw = AND(a, b, c, d, e)\n"
        netlist = parse_bench(text, library)
        validate(netlist, library)

    def test_parse_error_reported_with_line(self, library):
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench("INPUT(a)\nWHAT IS THIS\n", library)

    def test_unknown_function(self, library):
        with pytest.raises(BenchParseError, match="unknown function"):
            parse_bench("INPUT(a)\ny = FOO(a)\n", library)

    def test_not_maps_to_inv(self, library):
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", library
        )
        assert library[netlist["y"].cell].function == "INV"


class TestBenchRegressions:
    """Declare-then-resolve parsing: any line order, typed errors."""

    def test_non_topological_order_accepted(self, library):
        # Distribution ISCAS89 files reference gates before defining
        # them; a single-pass parser choked here.
        text = (
            "OUTPUT(y)\n"
            "y = NOT(g2)\n"
            "g2 = NAND(a, f1)\n"
            "f1 = DFF(g2)\n"
            "INPUT(a)\n"
        )
        netlist = parse_bench(text, library)
        assert netlist.stats()["flops"] == 1
        validate(netlist, library)

    def test_shuffled_source_parses_identically(self, library):
        import random

        reference = parse_bench(TestBench.BENCH, library, name="s")
        lines = [
            line
            for line in TestBench.BENCH.splitlines()
            if line.split("#", 1)[0].strip()
        ]
        rng = random.Random(99)
        for _ in range(8):
            rng.shuffle(lines)
            shuffled = parse_bench("\n".join(lines), library, name="s")
            assert shuffled.stats() == reference.stats()
            assert {
                (g.name, g.gtype, g.fanins) for g in shuffled
            } == {(g.name, g.gtype, g.fanins) for g in reference}

    def test_continuation_lines_joined(self, library):
        # Wide gates in the distributed files wrap their fanin lists
        # across physical lines.
        text = (
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(w)\n"
            "w = AND(a,\n"
            "        b,\n"
            "        c)\n"
        )
        netlist = parse_bench(text, library)
        assert netlist.stats()["inputs"] == 3
        validate(netlist, library)

    def test_error_in_continuation_reports_first_line(self, library):
        text = "INPUT(a)\nw = AND(a,\n  b\n"  # unbalanced at EOF
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench(text, library)

    def test_duplicate_input(self, library):
        with pytest.raises(
            BenchParseError,
            match=r"line 2: INPUT\(a\) already declared at line 1",
        ):
            parse_bench("INPUT(a)\nINPUT(a)\n", library)

    def test_input_redefined_as_gate(self, library):
        with pytest.raises(
            BenchParseError,
            match="gate 'a' redefines the INPUT declared at line 1",
        ):
            parse_bench("INPUT(a)\na = NOT(a)\n", library)

    def test_gate_redefined_as_input(self, library):
        with pytest.raises(
            BenchParseError,
            match=r"INPUT\(g\) conflicts with the gate defined at line 2",
        ):
            parse_bench("INPUT(a)\ng = NOT(a)\nINPUT(g)\n", library)

    def test_duplicate_gate(self, library):
        text = "INPUT(a)\ng = NOT(a)\ng = NOT(a)\n"
        with pytest.raises(
            BenchParseError,
            match="line 3: gate 'g' already defined at line 2",
        ):
            parse_bench(text, library)

    def test_repeated_output_marker(self, library):
        text = "INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n"
        with pytest.raises(
            BenchParseError,
            match=r"line 3: OUTPUT\(a\) already declared at line 2",
        ):
            parse_bench(text, library)

    def test_undefined_reference_named(self, library):
        with pytest.raises(
            BenchParseError,
            match="gate 'g' reads 'ghost', which is never defined",
        ):
            parse_bench("INPUT(a)\ng = NAND(a, ghost)\n", library)

    def test_undefined_output_named(self, library):
        with pytest.raises(
            BenchParseError, match=r"OUTPUT\(ghost\) names a net"
        ):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\n", library)

    def test_flop_arity_checked(self, library):
        with pytest.raises(
            BenchParseError, match="flop 'f' needs one fanin, got 2"
        ):
            parse_bench("INPUT(a)\nINPUT(b)\nf = DFF(a, b)\n", library)

    def test_empty_fanin_rejected(self, library):
        with pytest.raises(BenchParseError, match="has no fanin"):
            parse_bench("g = AND()\n", library)


class TestBenchRoundTripHypothesis:
    @given(st.integers(min_value=1, max_value=10**6))
    @hyp_settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_write_parse_idempotent(self, seed):
        # .bench cannot express AOI/OAI/MUX cells or drive strengths;
        # over the expressible subset, write∘parse is the identity on
        # structure and a fixpoint on text.
        from repro.circuits.generator import CloudSpec, generate_circuit

        spec = CloudSpec(
            name=f"hb{seed}",
            seed=seed,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=60,
            depth=5,
            critical_fraction=0.25,
        )
        netlist = generate_circuit(spec, _BENCH_LIBRARY)
        # Two PO markers on one net collapse to a single OUTPUT line,
        # which the reader rightly rejects as a duplicate.
        po_drivers = [g.fanins[0] for g in netlist.outputs()]
        assume(len(set(po_drivers)) == len(po_drivers))
        for gate in netlist.comb_gates():
            base = gate.cell.rsplit("_X", 1)[0]
            if base in ("AOI21", "OAI21", "MUX2"):
                netlist.replace_cell(gate.name, "NAND3_X1")
        text = bench_text(netlist)
        back = parse_bench(text, library=_BENCH_LIBRARY, name=netlist.name)
        assert back.stats() == netlist.stats()
        assert {(g.name, g.fanins) for g in back.comb_gates()} == {
            (g.name, g.fanins) for g in netlist.comb_gates()
        }
        assert {(g.name, g.fanins) for g in back.flops()} == {
            (g.name, g.fanins) for g in netlist.flops()
        }
        assert bench_text(back) == text


class TestValidate:
    def test_clean_netlist(self, tiny_netlist, library):
        validate(tiny_netlist, library)

    def test_missing_cell(self, library):
        netlist = Netlist("bad")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g", GateType.COMB, ("a",), cell="GHOST_X1"))
        with pytest.raises(NetlistError, match="not in library"):
            validate(netlist, library)

    def test_pin_arity_mismatch(self, library):
        netlist = Netlist("bad")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g", GateType.COMB, ("a",), cell="NAND2_X1"))
        with pytest.raises(NetlistError, match="pins"):
            validate(netlist, library)

    def test_output_as_driver_rejected(self, library):
        netlist = Netlist("bad")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("y", GateType.OUTPUT, ("a",)))
        netlist.add(Gate("g", GateType.COMB, ("y",), cell="INV_X1"))
        with pytest.raises(NetlistError, match="output marker"):
            validate(netlist, library)

    def test_dangling_gates(self, library):
        netlist = Netlist("d")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g", GateType.COMB, ("a",), cell="INV_X1"))
        netlist.add(Gate("y", GateType.OUTPUT, ("a",)))
        assert dangling_gates(netlist) == ["g"]


class TestTopoOrderCaching:
    """``topo_order()`` returns the cached immutable tuple directly."""

    def test_returns_same_tuple(self, tiny_netlist):
        first = tiny_netlist.topo_order()
        assert isinstance(first, tuple)
        assert tiny_netlist.topo_order() is first

    def test_rebuilds_after_mutation(self, library):
        netlist = Netlist("t")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g", GateType.COMB, ("a",), cell="INV_X1"))
        netlist.add(Gate("y", GateType.OUTPUT, ("g",)))
        before = netlist.topo_order()
        netlist.add(Gate("h", GateType.COMB, ("g",), cell="INV_X1"))
        after = netlist.topo_order()
        assert after is not before
        assert "h" in after and "h" not in before

    def test_counts_copies_avoided(self, tiny_netlist):
        from repro import metrics

        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            tiny_netlist.topo_order()
            tiny_netlist.topo_order()
        assert collector.counters["netlist.topo.copies_avoided"] == 2
