"""Tests for the synthetic circuit generator and benchmark suite."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    BENCHMARK_PROFILES,
    CloudSpec,
    build_benchmark,
    generate_circuit,
    suite_names,
)
from repro.circuits.suite import SMALL_SUITE, SUITE_ORDER
from repro.netlist import validate
from repro.netlist.validate import dangling_gates


class TestCloudSpec:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            CloudSpec("x", 1, 2, 2, 2, 50, depth=1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            CloudSpec("x", 1, 2, 2, 2, 50, depth=5, critical_fraction=1.5)

    def test_rejects_no_flops(self):
        with pytest.raises(ValueError):
            CloudSpec("x", 1, 2, 2, 0, 50, depth=5)


class TestGenerator:
    def test_deterministic(self, small_spec, library):
        a = generate_circuit(small_spec, library)
        b = generate_circuit(small_spec, library)
        assert [(g.name, g.fanins, g.cell) for g in a] == [
            (g.name, g.fanins, g.cell) for g in b
        ]

    def test_structural_validity(self, small_netlist, library):
        validate(small_netlist, library)

    def test_counts_match_spec(self, small_netlist, small_spec):
        stats = small_netlist.stats()
        assert stats["inputs"] == small_spec.n_inputs
        assert stats["outputs"] == small_spec.n_outputs
        assert stats["flops"] == small_spec.n_flops
        assert stats["comb_gates"] >= 0.9 * small_spec.n_gates

    def test_no_dead_logic(self, small_netlist):
        alive = set()
        stack = [g.name for g in small_netlist.endpoints()]
        while stack:
            name = stack.pop()
            if name in alive:
                continue
            alive.add(name)
            stack.extend(small_netlist[name].fanins)
        dead = [
            g.name
            for g in small_netlist.comb_gates()
            if g.name not in alive
        ]
        assert dead == []
        assert dangling_gates(small_netlist) == []

    def test_drive_distribution_has_headroom(self, small_netlist, library):
        """Some gates must be above minimum size, or area recovery and
        the sizing ablations have nothing to trade."""
        drives = {
            library[g.cell].drive for g in small_netlist.comb_gates()
        }
        assert {1, 2} <= drives

    @given(
        seed=st.integers(min_value=1, max_value=50),
        flops=st.integers(min_value=2, max_value=8),
        depth=st.integers(min_value=2, max_value=10),
        fraction=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_specs_are_valid(
        self, library, seed, flops, depth, fraction
    ):
        spec = CloudSpec(
            name=f"h{seed}",
            seed=seed,
            n_inputs=3,
            n_outputs=3,
            n_flops=flops,
            n_gates=depth * 12,
            depth=depth,
            critical_fraction=fraction,
        )
        netlist = generate_circuit(spec, library)
        validate(netlist, library)
        assert len(netlist.flops()) == flops


class TestSuite:
    def test_every_paper_circuit_present(self):
        for name in (
            "s1196", "s1238", "s1423", "s1488", "s5378", "s9234",
            "s13207", "s15850", "s35932", "s38417", "s38584", "plasma",
        ):
            assert name in BENCHMARK_PROFILES

    def test_flop_counts_match_table1(self):
        expected = {
            "s1196": 32, "s1423": 91, "s5378": 198, "s13207": 502,
            "s35932": 1763, "s38584": 1271, "plasma": 1652,
        }
        for name, flops in expected.items():
            assert BENCHMARK_PROFILES[name].n_flops == flops

    def test_suite_names(self):
        assert suite_names() == SUITE_ORDER
        assert suite_names(small_only=True) == SMALL_SUITE

    def test_unknown_benchmark(self, library):
        with pytest.raises(KeyError):
            build_benchmark("s9999", library)

    def test_small_suite_builds(self, library):
        for name in SMALL_SUITE:
            netlist = build_benchmark(name, library)
            validate(netlist, library)
            profile = BENCHMARK_PROFILES[name]
            assert len(netlist.flops()) == profile.n_flops

    def test_s1196_nce_matches_paper(self, s1196, library):
        """The generator's criticality calibration: the paper's s1196
        has 6 near-critical endpoints."""
        from repro.flows import prepare_circuit
        from repro.latches.conversion import original_flop_report

        scheme, _ = prepare_circuit(s1196.copy(), library)
        report = original_flop_report(s1196, scheme, library)
        paper_nce = BENCHMARK_PROFILES["s1196"].paper_nce
        assert abs(report.n_near_critical - paper_nce) <= 3
