"""Error paths and small-surface coverage across modules."""

import io
from fractions import Fraction

import pytest

from repro.circuits.fig4 import fig4_netlist, fig4_scheme
from repro.netlist.bench import write_bench
from repro.retime.graph import EdgeKind, GraphEdge, RetimingGraph
from repro.retime.netflow import solve_retiming_flow
from repro.retime.simplex import NetworkSimplex


class TestRetimingGraphContainer:
    def test_duplicate_node(self):
        graph = RetimingGraph()
        graph.add_node("a", -1, 0)
        with pytest.raises(ValueError):
            graph.add_node("a", -1, 0)

    def test_bad_bounds(self):
        graph = RetimingGraph()
        with pytest.raises(ValueError):
            graph.add_node("a", 1, 0)

    def test_edge_needs_nodes(self):
        graph = RetimingGraph()
        graph.add_node("a", 0, 0)
        with pytest.raises(KeyError):
            graph.add_edge("a", "ghost", 0, Fraction(1), EdgeKind.CIRCUIT)

    def test_constant_cost(self):
        graph = RetimingGraph()
        graph.add_node("a", -1, 0)
        graph.add_node("b", -1, 0)
        graph.add_edge("a", "b", 2, Fraction(1, 2), EdgeKind.CIRCUIT)
        assert graph.constant_cost() == Fraction(1)

    def test_check_feasible_reports_violations(self):
        graph = RetimingGraph()
        graph.add_node("a", -1, 0)
        graph.add_node("b", -1, 0)
        graph.add_edge("a", "b", 0, Fraction(1), EdgeKind.CIRCUIT)
        bad = graph.check_feasible({"a": 0, "b": -1})
        assert len(bad) == 1

    def test_stats_counts_kinds(self):
        graph = RetimingGraph()
        graph.add_node("a", -1, 0)
        graph.add_node("b", -1, 0)
        graph.add_edge("a", "b", 0, Fraction(1), EdgeKind.CIRCUIT)
        stats = graph.stats()
        assert stats["nodes"] == 2
        assert stats["circuit"] == 1


class TestSimplexLimits:
    def test_iteration_budget_enforced(self):
        """An absurdly low budget must abort rather than loop."""
        nodes = [f"n{i}" for i in range(6)]
        arcs = []
        for i in range(5):
            arcs.append((nodes[i], nodes[i + 1], 1))
            arcs.append((nodes[i + 1], nodes[i], 1))
        demands = {nodes[0]: Fraction(-3), nodes[-1]: Fraction(3)}
        simplex = NetworkSimplex(nodes, arcs, demands, max_iterations=1)
        with pytest.raises(RuntimeError, match="iteration budget"):
            simplex.solve()

    def test_scale_detection(self):
        simplex = NetworkSimplex(
            ["a", "b"],
            [("a", "b", 1)],
            {"a": Fraction(-1, 3), "b": Fraction(1, 3)},
        )
        assert simplex.scale == 3
        result = simplex.solve()
        assert result.objective == Fraction(1, 3)


class TestBenchWriter:
    def test_unwritable_cell_rejected(self, library):
        """AOI21 has no .bench equivalent; the writer must say so."""
        from repro.netlist import Gate, GateType, Netlist

        netlist = Netlist("x")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("b", GateType.INPUT))
        netlist.add(Gate("c", GateType.INPUT))
        netlist.add(
            Gate("g", GateType.COMB, ("a", "b", "c"), cell="AOI21_X1")
        )
        netlist.add(Gate("y", GateType.OUTPUT, ("g",)))
        with pytest.raises(ValueError, match="no .bench equivalent"):
            write_bench(netlist, io.StringIO())

    def test_fig4_not_bench_writable_but_parseable_gates_are(self, library):
        buffer = io.StringIO()
        from repro.netlist import NetlistBuilder

        builder = NetlistBuilder("ok", library)
        builder.input("a")
        builder.input("b")
        builder.gate("g", "NAND", ["a", "b"])
        builder.output("y", "g")
        write_bench(builder.build(), buffer)
        assert "NAND" in buffer.getvalue()


class TestResultSummaries:
    def test_flow_outcome_summary(self, small_netlist, library):
        from repro.flows import prepare_circuit, run_flow

        scheme, _ = prepare_circuit(small_netlist.copy(), library)
        outcome = run_flow(
            "base", small_netlist, library, 1.0, scheme=scheme
        )
        text = outcome.summary()
        assert "base[" in text and "slaves=" in text

    def test_retiming_result_summary(self, fig4):
        from repro.retime import grar_retime

        text = grar_retime(fig4, overhead=1.0).summary()
        assert "grar-flow[fig4" in text

    def test_legality_summary_strings(self, fig4):
        from repro.latches import SlavePlacement

        good = fig4.check_legality(
            SlavePlacement(retimed={"I1", "I2", "G3", "G4", "G5", "G6"})
        )
        assert good.summary() == "legal"
        bad = fig4.check_legality(SlavePlacement(retimed={"G6"}))
        assert "negative edges" in bad.summary()


class TestFig4Module:
    def test_scheme_values(self):
        scheme = fig4_scheme()
        assert scheme.period == 10.0
        assert scheme.max_path_delay == 12.5

    def test_netlist_shape(self):
        netlist = fig4_netlist()
        assert {g.name for g in netlist.inputs()} == {"I1", "I2"}
        assert {g.name for g in netlist.outputs()} == {"O9", "O10"}
        # Fig. 5's mirror nodes exist exactly for the 2-fanout gates.
        assert len(netlist.fanouts("I2")) == 2
        assert len(netlist.fanouts("G3")) == 2
        assert len(netlist.fanouts("I1")) == 1


class TestEngineOffsets:
    def test_source_offsets_shift_arrivals(self, tiny_netlist, library):
        from repro.sta import TimingEngine

        plain = TimingEngine(tiny_netlist, library)
        shifted = TimingEngine(
            tiny_netlist, library, source_offsets={"a": 1.0}
        )
        # With a large offset, the a-path dominates g1's arrival.
        assert shifted.forward_arrival("g1") >= (
            plain.forward_arrival("g1") + 0.9
        )
        assert shifted.forward_arrival("g1") <= (
            plain.forward_arrival("g1") + 1.0 + 1e-9
        )


class TestClockTree:
    def test_tree_estimate_levels(self, library):
        from repro.analysis import estimate_tree

        est = estimate_tree(144, library, fanout=12)
        # 144 sinks -> 12 leaf buffers -> 1 root buffer.
        assert est.buffers == 13
        assert est.area > 0

    def test_zero_sinks(self, library):
        from repro.analysis import estimate_tree

        assert estimate_tree(0, library).buffers == 0

    def test_bad_inputs(self, library):
        from repro.analysis import estimate_tree
        import pytest as _pytest

        with _pytest.raises(ValueError):
            estimate_tree(-1, library)
        with _pytest.raises(ValueError):
            estimate_tree(10, library, fanout=1)

    def test_two_phase_pays_overhead(self, small_netlist, library):
        """Section VI-D caveat: two trees cost more than one."""
        from repro.analysis import compare_clock_trees
        from repro.flows import prepare_circuit, run_flow

        scheme, _ = prepare_circuit(small_netlist.copy(), library)
        outcome = run_flow(
            "grar", small_netlist, library, 1.0, scheme=scheme
        )
        comparison = compare_clock_trees(
            outcome, n_flops=len(small_netlist.flops()), library=library
        )
        assert comparison.overhead >= 0
        assert comparison.latch_design_area >= comparison.flop_tree.area


class TestGraphNamespaceGuard:
    def test_hash_names_rejected(self, library):
        from repro.flows import prepare_circuit
        from repro.netlist import Gate, GateType, Netlist
        from repro.retime import build_retiming_graph, compute_regions

        netlist = Netlist("bad")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(Gate("g##m", GateType.COMB, ("a",), cell="INV_X1"))
        netlist.add(Gate("ff", GateType.DFF, ("g##m",), cell="DFF_X1"))
        from repro.clocks import scheme_from_period
        from repro.latches import TwoPhaseCircuit

        circuit = TwoPhaseCircuit(
            netlist, scheme_from_period(1.0), library
        )
        regions = compute_regions(circuit)
        with pytest.raises(ValueError, match="namespace"):
            build_retiming_graph(circuit, regions)
