"""Tests for flow-layer internals: master cells, recovery limits."""

import pytest

from repro.flows import prepare_circuit, run_flow
from repro.flows.run import _apply_master_cells, _recovery_limits
from repro.retime import base_retime, grar_retime


@pytest.fixture()
def circuit(small_netlist, library):
    _, circuit = prepare_circuit(small_netlist.copy(), library)
    return circuit


class TestMasterCells:
    def test_edl_flops_get_heavy_cell(self, circuit):
        flops = [g.name for g in circuit.netlist.flops()]
        chosen = set(flops[:3])
        _apply_master_cells(circuit, chosen)
        for name in flops:
            expected = "DFF_ED_X1" if name in chosen else "DFF_X1"
            assert circuit.netlist[name].cell == expected

    def test_swap_back(self, circuit):
        flops = [g.name for g in circuit.netlist.flops()]
        _apply_master_cells(circuit, set(flops))
        _apply_master_cells(circuit, set())
        assert all(
            g.cell == "DFF_X1" for g in circuit.netlist.flops()
        )

    def test_heavier_master_slows_driver(self, circuit):
        flop = circuit.netlist.flops()[0]
        driver = flop.fanins[0]
        before = circuit.engine.endpoint_arrival(flop.name)
        _apply_master_cells(circuit, {flop.name})
        after = circuit.engine.endpoint_arrival(flop.name)
        assert after >= before


class TestRecoveryLimits:
    def test_base_limits_pin_met_masters(self, circuit):
        result = base_retime(circuit, overhead=1.0)
        limits = _recovery_limits(circuit, result, "base")
        window_open = circuit.scheme.window_open
        window_close = circuit.scheme.window_close
        arrivals = circuit.endpoint_arrivals(result.placement)
        for name, limit in limits.items():
            if arrivals[name] <= window_open + 1e-9:
                assert limit == pytest.approx(window_open)
            else:
                assert limit == pytest.approx(window_close)

    def test_vl_limits_follow_types(self, circuit):
        from repro.vl import VlVariant, vl_retime

        result = vl_retime(
            circuit, overhead=1.0, variant=VlVariant.EVL, post_swap=False
        )
        limits = _recovery_limits(circuit, result, "evl")
        # EVL types everything error-detecting: all limits relax to
        # the window close — the drift that defeats the swap.
        assert set(limits.values()) == {circuit.scheme.window_close}


class TestBudgetScale:
    def test_larger_budget_never_more_edl(
        self, small_netlist, library
    ):
        scheme, _ = prepare_circuit(small_netlist.copy(), library)
        tight = run_flow(
            "grar", small_netlist, library, 1.0,
            scheme=scheme, rescue_budget_scale=0.0,
        )
        loose = run_flow(
            "grar", small_netlist, library, 1.0,
            scheme=scheme, rescue_budget_scale=8.0,
        )
        assert loose.n_edl <= tight.n_edl
