"""Tests for the flop-to-two-phase conversion front end.

The two oracles the ISSUE pins down:

* exported-then-converted Table-I circuits reproduce the native
  two-phase G-RAR outcomes bit-identically;
* an external ISCAS89 ``.bench`` file runs ``run_flow("grar")`` end to
  end under strict guards.

Plus the structural phase-legality invariants, the guard checkpoint,
and the netlist loader.
"""

import io
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cells import default_library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.clocks import scheme_from_period
from repro.convert import (
    PHASE_MASTER,
    PHASE_SLAVE,
    PhaseAssignment,
    check_phase_legality,
    convert_to_two_phase,
    load_netlist,
    phase_counts,
)
from repro.errors import ConversionError, NetlistError
from repro.flows import prepare_circuit, run_flow
from repro.guard import Guard
from repro.latches import SlavePlacement
from repro.netlist import NetlistBuilder
from repro.netlist.bench import parse_bench
from repro.netlist.verilog import parse_verilog, verilog_text

LIBRARY = default_library()

DATA = os.path.join(os.path.dirname(__file__), "data")
S27 = os.path.join(DATA, "s27.bench")

SEEDS = st.integers(min_value=1, max_value=10**6)
SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_netlist(seed, flops=8, gates=90, depth=6):
    spec = CloudSpec(
        name=f"conv{seed}",
        seed=seed,
        n_inputs=4,
        n_outputs=3,
        n_flops=flops,
        n_gates=gates,
        depth=depth,
        critical_fraction=0.3,
    )
    return generate_circuit(spec, LIBRARY)


class TestLoadNetlist:
    def test_bench_by_extension(self, library):
        netlist = load_netlist(S27, library)
        assert netlist.name == "s27"
        assert netlist.stats()["flops"] == 3

    def test_verilog_by_extension(self, tmp_path, small_netlist, library):
        path = tmp_path / "unit.v"
        path.write_text(verilog_text(small_netlist, library))
        netlist = load_netlist(path, library)
        assert netlist.stats() == small_netlist.stats()

    def test_explicit_format_overrides(self, tmp_path, library):
        path = tmp_path / "weird.txt"
        path.write_text(open(S27).read())
        netlist = load_netlist(path, library, fmt="bench", name="s27")
        assert netlist.name == "s27"

    def test_unknown_extension_rejected(self, tmp_path, library):
        path = tmp_path / "design.xyz"
        path.write_text("INPUT(a)\n")
        with pytest.raises(ConversionError, match="format"):
            load_netlist(path, library)

    def test_unknown_format_rejected(self, tmp_path, library):
        path = tmp_path / "design.bench"
        path.write_text("INPUT(a)\n")
        with pytest.raises(ConversionError, match="unknown netlist format"):
            load_netlist(path, library, fmt="edif")


class TestConversion:
    def test_s27_converts(self, library):
        design = convert_to_two_phase(load_netlist(S27, library), library)
        report = design.report
        assert report.n_flops == 3
        # Masters: 3 flop D pins + 1 PO environment master.
        assert report.n_masters == 4
        assert report.n_slaves >= report.n_flops
        assert design.legality.ok
        assert design.phases.n_masters == report.n_masters
        assert design.phases.n_slaves == report.n_slaves
        assert "s27" in report.summary()

    def test_scheme_matches_native_recipe(self, small_netlist, library):
        design = convert_to_two_phase(small_netlist, library)
        scheme, _ = prepare_circuit(small_netlist, library)
        assert design.scheme == scheme

    def test_prepare_circuit_convert_routes_through(
        self, small_netlist, library
    ):
        direct, _ = prepare_circuit(small_netlist, library)
        converted, circuit = prepare_circuit(
            small_netlist, library, convert="two-phase"
        )
        assert converted == direct
        assert circuit.scheme == direct

    def test_prepare_circuit_rejects_unknown_conversion(
        self, small_netlist, library
    ):
        with pytest.raises(ValueError, match="two-phase"):
            prepare_circuit(small_netlist, library, convert="four-phase")

    def test_balanced_placement_is_region_vm(self, small_netlist, library):
        design = convert_to_two_phase(small_netlist, library)
        assert design.placement.retimed == design.circuit.region_vm()
        assert design.report.n_balanced == len(design.placement.retimed)

    def test_unbalanced_keeps_slaves_home(self, library):
        design = convert_to_two_phase(
            load_netlist(S27, library), library, balance=False
        )
        assert design.placement.retimed == set()
        assert design.legality.ok

    def test_empty_cloud_rejected(self, library):
        builder = NetlistBuilder("empty", library)
        builder.input("a")
        netlist = builder.build()
        with pytest.raises(ConversionError, match="nothing to phase"):
            convert_to_two_phase(netlist, library)

    def test_region_conflict_rejected(self, small_netlist, library):
        # A clock far too tight for the logic depth makes some node
        # both must-retime (7) and must-not-retime (6).
        _, circuit = prepare_circuit(small_netlist, library)
        tight = scheme_from_period(circuit.engine.worst_arrival() * 0.3)
        with pytest.raises(ConversionError, match="no legal slave"):
            convert_to_two_phase(small_netlist, library, scheme=tight)

    def test_conversion_error_is_netlist_error(self, library):
        # The CLI maps NetlistError to exit code 3; conversion
        # failures must ride the same rail.
        assert issubclass(ConversionError, NetlistError)

    def test_report_accounting(self, library):
        netlist = load_netlist(S27, library)
        design = convert_to_two_phase(netlist, library)
        report = design.report
        latch = library.default_latch().area
        expected = (report.n_masters + report.n_slaves) * latch
        assert report.latch_area_after == pytest.approx(expected)
        assert report.flop_area_before == pytest.approx(
            netlist.flop_area(library)
        )
        assert report.seq_area_delta == pytest.approx(
            report.latch_area_after - report.flop_area_before
        )
        # The resilient floor adds c per forced-EDL master.
        base = report.resilient_area(library, 0.0)
        assert report.resilient_area(library, 1.0) == pytest.approx(
            base + report.n_forced_edl * latch
        )


class TestPhaseLegality:
    def test_initial_placement_legal(self, small_netlist, library):
        report = check_phase_legality(
            small_netlist, SlavePlacement.initial()
        )
        assert report.ok
        assert report.summary() == "phase-legal"

    def test_counts(self, small_netlist):
        counts = phase_counts(small_netlist, SlavePlacement.initial())
        endpoints = len(small_netlist.endpoints())
        assert counts[PHASE_MASTER] == endpoints
        assert counts[PHASE_SLAVE] == len(small_netlist.sources())

    def test_negative_cut_reported(self, library):
        # Retiming through g2 without retiming g1 leaves the g1->g2
        # edge with weight -1 and mints a fresh latch on g2->y, so the
        # endpoint sits behind both the host latch and the minted one.
        builder = NetlistBuilder("chain", library)
        builder.input("a")
        builder.gate("g1", "INV", ["a"])
        builder.gate("g2", "INV", ["g1"])
        builder.output("y", "g2")
        netlist = builder.build()
        placement = SlavePlacement(retimed={"g2"})
        assert placement.check_nonnegative(netlist)
        report = check_phase_legality(netlist, placement)
        assert not report.ok
        assert report.overlatched_endpoints == ["y"]

    def test_reconvergence_conflict_reported(self, library):
        # One branch retimed, the other not: the reconverging gate
        # sees fanins at different slave depths.
        builder = NetlistBuilder("reconv", library)
        builder.input("a")
        builder.gate("g1", "INV", ["a"])
        builder.gate("g2", "INV", ["a"])
        builder.gate("g3", "NAND", ["g1", "g2"])
        builder.output("y", "g3")
        netlist = builder.build()
        placement = SlavePlacement(retimed={"g1"})
        report = check_phase_legality(netlist, placement)
        assert "g3" in report.conflicts
        assert not report.ok

    def test_unphased_elements_reported(self, small_netlist):
        placement = SlavePlacement.initial()
        full = PhaseAssignment.from_placement(small_netlist, placement)
        truncated = PhaseAssignment(
            masters=full.masters[1:], slave_sites=full.slave_sites[1:]
        )
        report = check_phase_legality(small_netlist, placement, truncated)
        assert len(report.unphased) == 2
        assert not report.ok

    def test_phase_of_covers_both_roles(self, library):
        netlist = load_netlist(S27, library)
        placement = SlavePlacement.initial()
        phases = PhaseAssignment.from_placement(netlist, placement)
        phase_of = phases.phase_of
        # A flop is a phi1 master on its D side and carries a phi2
        # slave on its Q side; both must be present.
        assert phase_of["G5"] == PHASE_MASTER
        assert phase_of["G5__slave"] == PHASE_SLAVE
        assert phase_of["G0"] == PHASE_SLAVE  # PI host latch

    @given(SEEDS)
    @SLOW
    def test_any_nonnegative_placement_is_phase_legal(self, seed):
        # The telescoping identity: along any host->v path the retimed
        # weight sums to 1 + r(v), so every placement with r in {-1,0}
        # and non-negative edges is automatically phase-legal.
        netlist = make_netlist(seed)
        _, circuit = prepare_circuit(netlist, LIBRARY)
        placement = SlavePlacement(retimed=circuit.region_vm())
        assert not placement.check_nonnegative(netlist)
        report = check_phase_legality(netlist, placement)
        assert report.ok, report.summary()

    @given(SEEDS)
    @SLOW
    def test_random_conversion_legal_and_scheme_exact(self, seed):
        netlist = make_netlist(seed, flops=6, gates=70, depth=5)
        design = convert_to_two_phase(netlist, LIBRARY)
        assert design.legality.ok
        scheme, _ = prepare_circuit(netlist, LIBRARY)
        assert design.scheme == scheme
        counts = phase_counts(netlist, design.placement)
        assert counts[PHASE_MASTER] == design.phases.n_masters
        assert counts[PHASE_SLAVE] == design.phases.n_slaves


class TestGuardCheckpoint:
    def test_checkpoint_passes_on_legal_cut(self, small_netlist):
        guard = Guard("strict", circuit_name="unit")
        record = guard.phase_legality(
            small_netlist, SlavePlacement.initial(), "convert"
        )
        assert record.ok

    def test_checkpoint_raises_in_strict(self, library):
        from repro.errors import InvariantError

        builder = NetlistBuilder("chain", library)
        builder.input("a")
        builder.gate("g1", "INV", ["a"])
        builder.gate("g2", "INV", ["g1"])
        builder.output("y", "g2")
        netlist = builder.build()
        guard = Guard("strict", circuit_name="chain")
        with pytest.raises(InvariantError, match="phase_legality"):
            guard.phase_legality(
                netlist, SlavePlacement(retimed={"g2"}), "retime"
            )

    def test_checkpoint_records_in_warn(self, library):
        builder = NetlistBuilder("chain", library)
        builder.input("a")
        builder.gate("g1", "INV", ["a"])
        builder.gate("g2", "INV", ["g1"])
        builder.output("y", "g2")
        netlist = builder.build()
        guard = Guard("warn")
        record = guard.phase_legality(
            netlist, SlavePlacement(retimed={"g2"}), "retime"
        )
        assert not record.ok
        assert guard.violations


class TestFlowIntegration:
    def test_s27_grar_end_to_end_strict(self, library):
        # Acceptance: an external ISCAS89 .bench runs run_flow("grar")
        # end to end under strict guards.
        netlist = load_netlist(S27, library)
        outcome = run_flow(
            "grar", netlist, library, 1.0,
            guard="strict", convert="two-phase",
        )
        assert outcome.conversion is not None
        assert outcome.conversion.n_flops == 3
        assert outcome.cost.n_slaves >= 0
        checkpoints = {r.checkpoint for r in outcome.guard_records}
        assert "phase_legality" in checkpoints
        assert all(r.ok for r in outcome.guard_records)

    def test_converted_flow_matches_native(self, small_netlist, library):
        native = run_flow("grar", small_netlist, library, 1.0)
        converted = run_flow(
            "grar", small_netlist, library, 1.0, convert="two-phase"
        )
        assert converted.cost == native.cost
        assert converted.edl_endpoints == native.edl_endpoints
        assert (
            converted.retiming.placement.retimed
            == native.retiming.placement.retimed
        )
        assert converted.total_area == native.total_area
        assert converted.conversion is not None
        assert native.conversion is None

    def test_run_flow_rejects_unknown_conversion(
        self, small_netlist, library
    ):
        with pytest.raises(ValueError, match="two-phase"):
            run_flow(
                "grar", small_netlist, library, 1.0, convert="flux"
            )

    def test_export_convert_bit_parity_s1196(self, s1196, library):
        # Acceptance oracle: a Table-I circuit exported to Verilog,
        # re-parsed, and run through the conversion front end must
        # reproduce the native two-phase G-RAR outcome bit-identically.
        text = verilog_text(s1196, library)
        back = parse_verilog(io.StringIO(text), library)
        native = run_flow("grar", s1196, library, 1.0)
        converted = run_flow(
            "grar", back, library, 1.0, convert="two-phase"
        )
        assert converted.cost == native.cost
        assert converted.edl_endpoints == native.edl_endpoints
        assert (
            converted.retiming.placement.retimed
            == native.retiming.placement.retimed
        )
        assert converted.sequential_area == native.sequential_area
        assert converted.total_area == native.total_area


class TestSuiteIntegration:
    def test_add_netlist_joins_suite(self, library):
        from repro.harness import ExperimentSuite

        netlist = load_netlist(S27, library)
        design = convert_to_two_phase(netlist, library)
        suite = ExperimentSuite(circuits=["s1196"], library=library)
        suite.add_netlist("s27", netlist, scheme=design.scheme)
        assert "s27" in suite.circuit_names
        assert suite.netlist("s27") is netlist
        assert suite.scheme("s27") == design.scheme
        outcome = suite.outcome("s27", "base", 1.0)
        assert outcome.circuit_name == "s27"


class TestCli:
    def test_convert_command(self, capsys):
        from repro.cli import main

        assert main(["convert", S27]) == 0
        out = capsys.readouterr().out
        assert "phase legality: phase-legal" in out
        assert "3 flops -> 4 masters" in out

    def test_convert_writes_verilog(self, tmp_path, capsys, library):
        from repro.cli import main

        out_path = tmp_path / "s27.v"
        assert main(["convert", S27, "--out", str(out_path)]) == 0
        back = parse_verilog(out_path.read_text(), library)
        assert back.stats()["flops"] == 3

    def test_run_from_bench(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "--from-bench", S27, "--method", "grar",
             "--guard", "strict"]
        ) == 0
        out = capsys.readouterr().out
        assert "converted: s27" in out
        assert "grar[s27" in out

    def test_run_rejects_circuit_plus_file(self, capsys):
        from repro.cli import main

        assert main(["run", "s1196", "--from-bench", S27]) == 2

    def test_run_requires_some_input(self, capsys):
        from repro.cli import main

        assert main(["run"]) == 2

    def test_convert_missing_file_exits_netlist(self, capsys):
        from repro.cli import main

        assert main(["convert", "/nonexistent/x.bench"]) == 3
