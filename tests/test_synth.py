"""Tests for the synthesis-tool substrate: sizing, recovery, facade."""

import pytest

from repro.flows import prepare_circuit
from repro.latches import SlavePlacement
from repro.retime import base_retime, grar_retime
from repro.synth import SynthTool, ToolOptions, size_only_compile
from repro.synth.recovery import recover_area, required_times
from repro.synth.sizing import rescue_paths, speed_paths


@pytest.fixture()
def sized_case(small_netlist, library):
    """A fresh circuit plus a base placement, private per test."""
    scheme, circuit = prepare_circuit(small_netlist.copy(), library)
    result = base_retime(circuit, overhead=1.0)
    return scheme, circuit, result.placement


class TestSizeOnlyCompile:
    def test_fixes_window_overflows(self, sized_case):
        scheme, circuit, placement = sized_case
        limits = {
            name: scheme.window_close for name in circuit.endpoint_names
        }
        report = size_only_compile(circuit, placement, limits)
        arrivals = circuit.endpoint_arrivals(placement)
        for name, limit in limits.items():
            if name not in report.unresolved:
                assert arrivals[name] <= limit + 1e-7

    def test_only_resizes_never_rewires(self, sized_case):
        _, circuit, placement = sized_case
        before = {g.name: g.fanins for g in circuit.netlist}
        limits = {
            name: circuit.scheme.window_close
            for name in circuit.endpoint_names
        }
        size_only_compile(circuit, placement, limits)
        after = {g.name: g.fanins for g in circuit.netlist}
        assert before == after

    def test_area_delta_matches_resizes(self, sized_case):
        _, circuit, placement = sized_case
        library = circuit.library
        before = circuit.netlist.comb_area(library)
        limits = {
            name: circuit.scheme.window_close
            for name in circuit.endpoint_names
        }
        report = size_only_compile(circuit, placement, limits)
        assert report.area_delta == pytest.approx(
            circuit.netlist.comb_area(library) - before
        )

    def test_impossible_limit_reported_unresolved(self, sized_case):
        _, circuit, placement = sized_case
        victim = circuit.endpoint_names[0]
        report = size_only_compile(circuit, placement, {victim: 1e-6})
        assert victim in report.unresolved
        assert not report.clean


class TestSpeedPaths:
    def test_speeds_below_target(self, small_netlist, library):
        scheme, circuit = prepare_circuit(small_netlist.copy(), library)
        engine = circuit.engine
        worst = engine.worst_arrival()
        target = worst * 0.8
        endpoint = max(
            circuit.endpoint_names, key=engine.endpoint_arrival
        )
        report = speed_paths(circuit, {endpoint: target})
        if endpoint not in report.unresolved:
            assert engine.endpoint_arrival(endpoint) <= target + 1e-9
            assert report.area_delta > 0

    def test_no_op_when_already_met(self, small_netlist, library):
        scheme, circuit = prepare_circuit(small_netlist.copy(), library)
        worst = circuit.engine.worst_arrival()
        report = speed_paths(
            circuit,
            {circuit.endpoint_names[0]: worst * 10},
        )
        assert report.n_resized == 0
        assert report.area_delta == 0


class TestRescuePaths:
    def test_zero_budget_abandons_all(self, small_netlist, library):
        _, circuit = prepare_circuit(small_netlist.copy(), library)
        candidates = circuit.endpoint_names[:3]
        report = rescue_paths(circuit, candidates, target=0.1, budget_per_endpoint=0.0)
        assert set(report.abandoned) == set(candidates)
        assert not report.resized

    def test_unprofitable_rescue_reverted(self, small_netlist, library):
        """With a microscopic budget, the netlist must be untouched."""
        _, circuit = prepare_circuit(small_netlist.copy(), library)
        cells_before = {g.name: g.cell for g in circuit.netlist}
        engine = circuit.engine
        worst = engine.worst_arrival()
        candidates = [
            n
            for n in circuit.endpoint_names
            if engine.endpoint_arrival(n) > 0.8 * worst
        ]
        report = rescue_paths(
            circuit, candidates, target=0.7 * worst,
            budget_per_endpoint=1e-9,
        )
        if not report.rescued:
            cells_after = {g.name: g.cell for g in circuit.netlist}
            assert cells_before == cells_after

    def test_generous_budget_rescues(self, small_netlist, library):
        scheme, circuit = prepare_circuit(small_netlist.copy(), library)
        engine = circuit.engine
        target = scheme.window_open * 0.97
        candidates = [
            n
            for n in circuit.endpoint_names
            if engine.endpoint_arrival(n) > target
        ]
        report = rescue_paths(
            circuit, candidates, target=target, budget_per_endpoint=1e9
        )
        assert report.rescued
        for endpoint in report.rescued:
            assert engine.endpoint_arrival(endpoint) <= target + 1e-9


class TestRecovery:
    def test_respects_limits(self, sized_case):
        scheme, circuit, placement = sized_case
        limits = {
            name: scheme.window_close for name in circuit.endpoint_names
        }
        size_only_compile(circuit, placement, limits)
        recover_area(circuit, placement, limits)
        arrivals = circuit.endpoint_arrivals(placement)
        for name, limit in limits.items():
            assert arrivals[name] <= limit + 1e-6

    def test_saves_area_with_loose_limits(self, sized_case):
        scheme, circuit, placement = sized_case
        library = circuit.library
        before = circuit.netlist.comb_area(library)
        limits = {
            name: scheme.window_close * 10
            for name in circuit.endpoint_names
        }
        report = recover_area(circuit, placement, limits)
        assert report.area_saved > 0
        assert circuit.netlist.comb_area(library) < before

    def test_required_times_monotone(self, sized_case):
        """A driver's requirement is never looser than what its
        fanouts allow."""
        scheme, circuit, placement = sized_case
        limits = {
            name: scheme.window_close for name in circuit.endpoint_names
        }
        req = required_times(circuit, placement, limits)
        netlist = circuit.netlist
        for gate in netlist.comb_gates():
            for user in netlist.fanouts(gate.name):
                user_gate = netlist[user]
                if not user_gate.is_comb:
                    continue
                if placement.edge_weight_after(netlist, gate.name, user) == 1:
                    continue  # decoupled by the slave latch
                bound = req.get(user, float("inf")) - circuit.edge_delay(
                    gate.name, user
                )
                assert req.get(gate.name, float("inf")) <= bound + 1e-9


class TestSynthTool:
    def test_derive_clock(self, small_netlist, library):
        tool = SynthTool(small_netlist.copy(), library)
        scheme = tool.derive_clock()
        assert scheme.max_path_delay > 0
        assert any("derive_clock" in line for line in tool.log)

    def test_report_timing(self, small_netlist, library):
        tool = SynthTool(small_netlist.copy(), library)
        paths = tool.report_timing(count=3)
        assert len(paths) == 3
        assert paths[0].arrival >= paths[-1].arrival

    def test_constraints_logged(self, small_netlist, library):
        tool = SynthTool(small_netlist.copy(), library)
        tool.set_max_delay("ff0", 1.0)
        assert tool.max_delay_constraints == {"ff0": 1.0}

    def test_retime_command(self, small_netlist, library):
        netlist = small_netlist.copy()
        tool = SynthTool(netlist, library)
        scheme = tool.derive_clock()
        _, circuit = prepare_circuit(netlist, library, scheme=scheme)
        result = tool.retime(circuit, resiliency_aware=True, overhead=1.0)
        assert result.method.startswith("grar")
        base = tool.retime(circuit, resiliency_aware=False, overhead=1.0)
        assert base.method.startswith("base")

    def test_compile_incremental_size_only_guard(
        self, small_netlist, library
    ):
        netlist = small_netlist.copy()
        tool = SynthTool(netlist, library)
        scheme = tool.derive_clock()
        _, circuit = prepare_circuit(netlist, library, scheme=scheme)
        with pytest.raises(NotImplementedError):
            tool.compile_incremental(
                circuit, SlavePlacement.initial(), size_only=False
            )
