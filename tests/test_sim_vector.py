"""Cross-backend parity suite for the lane-vectorized simulator.

``repro.sim.vector`` promises comparison-identical
:class:`~repro.sim.errorrate.ErrorRateReport` objects against the
event and compiled backends for every seed — including final
flop/latch state, under injection plans, at any lane count, and on
both the compiled C gate stage and its pure-NumPy fallback.  These
tests are that promise's acceptance gate: random circuits ×
placements × injection plans × lane counts (a single lane and a
ragged final batch included) against the event-backend oracle.
"""

import functools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cells import default_library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.errors import SimulationError
from repro.flows import prepare_circuit
from repro.latches import SlavePlacement
from repro.retime import grar_retime
from repro.scenarios.injectors import build_injection_plan
from repro.sim import (
    SIM_BACKENDS,
    ErrorRateReport,
    estimate_error_rate,
    estimate_error_rate_batched,
    estimate_error_rate_vector,
)
from repro.sim import _native

LIBRARY = default_library()
CYCLES = 12

SLOW = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@functools.lru_cache(maxsize=32)
def make_case(seed, retimed=False):
    """A small random FSM cloud plus a placement and EDL set."""
    spec = CloudSpec(
        name=f"vec{seed}",
        seed=seed,
        n_inputs=4,
        n_outputs=3,
        n_flops=6,
        n_gates=60,
        depth=5,
        critical_fraction=0.3,
    )
    netlist = generate_circuit(spec, LIBRARY)
    scheme, circuit = prepare_circuit(netlist, LIBRARY)
    if retimed:
        placement = grar_retime(circuit, overhead=1.0).placement
    else:
        placement = SlavePlacement.initial()
    edl = frozenset(g.name for g in circuit.netlist.endpoints())
    return circuit, scheme, placement, edl


def event_reports(circuit, placement, edl, seeds, injection=None):
    """The oracle: one sequential event-backend run per seed."""
    return [
        estimate_error_rate(
            circuit,
            placement,
            set(edl),
            cycles=CYCLES,
            seed=s,
            backend="event",
            injection=injection,
        )
        for s in seeds
    ]


def make_plan(circuit, scheme, placement, seed):
    return build_injection_plan(
        circuit.netlist,
        scheme,
        cycles=CYCLES,
        seed=seed,
        sigma=0.03,
        seu_rate=0.2,
        glitch_rate=0.2,
        placement=placement,
    )


class TestVectorParity:
    @given(
        st.integers(min_value=1, max_value=10**6),
        st.booleans(),
        st.sampled_from([1, 2, 5]),
        st.booleans(),
    )
    @SLOW
    def test_matches_event_backend(self, seed, retimed, lanes, inject):
        """Random circuit × placement × plan × lane count == event."""
        circuit, scheme, placement, edl = make_case(seed % 40, retimed)
        seeds = tuple(seed + 31 * k for k in range(lanes))
        plan = (
            make_plan(circuit, scheme, placement, seed) if inject else None
        )
        vec = estimate_error_rate_vector(
            circuit,
            placement,
            set(edl),
            cycles=CYCLES,
            seeds=seeds,
            injection=plan,
        )
        assert vec == event_reports(
            circuit, placement, edl, seeds, injection=plan
        )

    def test_ragged_final_batch(self):
        """lane_block=4 over 6 seeds: a full block plus a ragged tail."""
        circuit, _, placement, edl = make_case(3)
        seeds = tuple(100 + k for k in range(6))
        vec = estimate_error_rate_vector(
            circuit,
            placement,
            set(edl),
            cycles=CYCLES,
            seeds=seeds,
            lane_block=4,
        )
        assert len(vec) == len(seeds)
        assert all(r.backend == "vector" for r in vec)
        assert vec == event_reports(circuit, placement, edl, seeds)

    def test_numpy_fallback_matches_event(self, monkeypatch):
        """With the native helper disabled the pure-NumPy gate stage
        must produce the same reports (plain and injected)."""
        monkeypatch.setattr(_native, "_lib", None)
        circuit, scheme, placement, edl = make_case(5, retimed=True)
        seeds = (11, 12, 13)
        plan = make_plan(circuit, scheme, placement, 5)
        for injection in (None, plan):
            vec = estimate_error_rate_vector(
                circuit,
                placement,
                set(edl),
                cycles=CYCLES,
                seeds=seeds,
                injection=injection,
            )
            assert vec == event_reports(
                circuit, placement, edl, seeds, injection=injection
            )

    def test_native_env_switch(self, monkeypatch):
        """REPRO_VECTOR_NATIVE=0 forces the fallback at load time."""
        monkeypatch.setattr(_native, "_lib", _native._UNSET)
        monkeypatch.setenv("REPRO_VECTOR_NATIVE", "0")
        assert _native.load() is None

    def test_event_cap_overflow_parity(self):
        """A too-small event cap raises the same typed error as the
        compiled backend (same gate and count on a single lane)."""
        circuit, _, placement, edl = make_case(7)
        with pytest.raises(SimulationError) as compiled_exc:
            estimate_error_rate(
                circuit,
                placement,
                set(edl),
                cycles=CYCLES,
                seed=42,
                backend="compiled",
                max_events_per_net=1,
            )
        with pytest.raises(SimulationError) as vector_exc:
            estimate_error_rate_vector(
                circuit,
                placement,
                set(edl),
                cycles=CYCLES,
                seeds=(42,),
                max_events_per_net=1,
            )
        assert str(vector_exc.value) == str(compiled_exc.value)


class TestVectorDispatch:
    def test_sim_backends_contents(self):
        assert SIM_BACKENDS == ("event", "compiled", "vector")

    def test_estimate_error_rate_vector_backend(self):
        """Single-seed ``backend='vector'`` dispatch == compiled."""
        circuit, _, placement, edl = make_case(9)
        compiled = estimate_error_rate(
            circuit, placement, set(edl), cycles=CYCLES, seed=77
        )
        vec = estimate_error_rate(
            circuit,
            placement,
            set(edl),
            cycles=CYCLES,
            seed=77,
            backend="vector",
        )
        assert vec == compiled

    def test_batched_vector_backend(self):
        """``estimate_error_rate_batched(backend='vector')`` returns
        the same reports as the batched compiled backend."""
        circuit, _, placement, edl = make_case(9)
        seeds = (5, 6, 7)
        compiled = estimate_error_rate_batched(
            circuit, placement, set(edl), cycles=CYCLES, seeds=seeds
        )
        vec = estimate_error_rate_batched(
            circuit,
            placement,
            set(edl),
            cycles=CYCLES,
            seeds=seeds,
            backend="vector",
        )
        assert vec == compiled

    def test_cycles_per_sec_none_semantics(self):
        """``None`` means unmeasured and never affects comparison."""
        assert ErrorRateReport.__dataclass_fields__[
            "cycles_per_sec"
        ].compare is False
        circuit, _, placement, edl = make_case(9)
        report = estimate_error_rate(
            circuit, placement, set(edl), cycles=CYCLES, seed=3
        )
        twin = estimate_error_rate(
            circuit, placement, set(edl), cycles=CYCLES, seed=3
        )
        report.cycles_per_sec = None
        twin.cycles_per_sec = 123.0
        assert report == twin
