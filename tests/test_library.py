"""Tests for the library container and the default-library builder."""

import pytest

from repro.cells import (
    LatchGroup,
    Library,
    build_virtual_library,
    default_library,
)
from repro.cells.builder import (
    FF_AREA,
    LATCH_AREA_RATIO,
    LVT_AREA_FACTOR,
    _COMB_SPECS,
)
from repro.clocks import scheme_from_period


class TestLibraryQueries:
    def test_duplicate_cell_rejected(self, library):
        with pytest.raises(ValueError):
            library.add(library["INV_X1"])

    def test_getitem_missing(self, library):
        with pytest.raises(KeyError):
            library["NO_SUCH_CELL"]

    def test_contains(self, library):
        assert "INV_X1" in library
        assert "INV_X9" not in library

    def test_drive_variants_same_vt(self, library):
        variants = library.drive_variants(library["NAND2_X1"])
        assert [c.drive for c in variants] == [1, 2, 4]
        assert all(c.vt == "svt" for c in variants)

    def test_next_drive_up(self, library):
        assert library.next_drive_up(library["INV_X1"]).name == "INV_X2"
        assert library.next_drive_up(library["INV_X2"]).name == "INV_X4"
        assert library.next_drive_up(library["INV_X4"]) is None

    def test_vt_variant(self, library):
        lvt = library.vt_variant(library["NOR2_X2"], "lvt")
        assert lvt.name == "NOR2_LVT_X2"
        assert lvt.drive == 2
        # Same-vt request returns the cell itself.
        assert library.vt_variant(lvt, "lvt") is lvt
        back = library.vt_variant(lvt, "svt")
        assert back.name == "NOR2_X2"

    def test_comb_by_function_svt_only(self, library):
        cells = library.comb_by_function("NAND", 2)
        assert all(c.vt == "svt" for c in cells)
        assert [c.drive for c in cells] == [1, 2, 4]

    def test_pick_comb_fallback(self, library):
        cell = library.pick_comb("XOR", 2, drive=16)
        assert cell.drive == 1  # falls back to weakest

    def test_pick_comb_missing(self, library):
        with pytest.raises(KeyError):
            library.pick_comb("NAND", 7)

    def test_default_latch_and_edl(self, library):
        latch = library.default_latch()
        edl = library.edl_latch()
        assert not latch.error_detecting
        assert edl.error_detecting
        assert edl.area > latch.area

    def test_default_flip_flop(self, library):
        ff = library.default_flip_flop()
        assert ff.name == "DFF_X1"
        assert not ff.error_detecting

    def test_stats(self, library):
        stats = library.stats()
        assert stats["latches"] == 2
        assert stats["flip_flops"] == 2
        assert stats["combinational"] == stats["cells"] - 4

    def test_merged_with(self, library):
        other = Library("other")
        other.add(library["INV_X1"])
        merged = library.merged_with(other, "merged")
        assert len(merged) == len(library)

    def test_from_cells(self, library):
        lib = Library.from_cells("sub", [library["INV_X1"], library["BUF_X1"]])
        assert len(lib) == 2


class TestDefaultLibrary:
    def test_latch_to_ff_ratio_is_43_percent(self, library):
        """Paper Section VI-D: latch area is 43% of a flip-flop's."""
        latch = library.default_latch()
        ff = library.default_flip_flop()
        assert latch.area / ff.area == pytest.approx(LATCH_AREA_RATIO)

    def test_edl_area_scales_with_overhead(self):
        for c in (0.5, 1.0, 2.0):
            lib = default_library(edl_overhead=c)
            latch = lib.default_latch()
            edl = lib.edl_latch()
            assert edl.area == pytest.approx(latch.area * (1 + c))
            assert edl.overhead == c

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            default_library(edl_overhead=-0.1)

    def test_every_function_at_every_drive_and_vt(self, library):
        for base in _COMB_SPECS:
            for drive in (1, 2, 4):
                assert f"{base}_X{drive}" in library
                assert f"{base}_LVT_X{drive}" in library

    def test_lvt_faster_same_pins(self, library):
        svt = library["NAND2_X1"]
        lvt = library["NAND2_LVT_X1"]
        load = 3.0
        assert lvt.worst_delay(load) < svt.worst_delay(load)
        assert lvt.area == pytest.approx(svt.area * LVT_AREA_FACTOR)
        for pin in svt.inputs:
            assert lvt.pin_cap(pin) == pytest.approx(svt.pin_cap(pin))

    def test_stronger_drive_wins_under_load(self, library):
        x1 = library["INV_X1"]
        x4 = library["INV_X4"]
        assert x4.worst_delay(8.0) < x1.worst_delay(8.0)
        assert x4.area > x1.area

    def test_latch_dq_vs_ckq_gap(self, library):
        """Section III: D->Q and CK->Q can differ by up to 40%."""
        latch = library.default_latch()
        gap = latch.ck_to_q / latch.d_to_q
        assert 1.2 <= gap <= 1.5

    def test_edl_master_has_heavier_d_pin(self, library):
        assert (
            library["DFF_ED_X1"].input_cap > library["DFF_X1"].input_cap
        )
        assert (
            library["LATCH_ED_X1"].input_cap
            > library["LATCH_X1"].input_cap
        )

    def test_unsupported_drive_rejected(self):
        with pytest.raises(ValueError):
            default_library(drives=(1, 3))


class TestVirtualLibrary:
    def test_three_groups(self, library):
        scheme = scheme_from_period(1.0)
        vl = build_virtual_library(library, scheme, overhead=1.0)
        assert vl.library.group_of("VLATCH_N_X1") is LatchGroup.NON_EDL
        assert vl.library.group_of("VLATCH_E_X1") is LatchGroup.EDL
        assert vl.library.group_of("LATCH_X1") is LatchGroup.NORMAL

    def test_non_edl_setup_extended_by_window(self, library):
        """Section V: non-EDL setup grows by the resiliency window."""
        scheme = scheme_from_period(1.0)
        vl = build_virtual_library(library, scheme, overhead=1.0)
        base_setup = library.default_latch().timing.setup
        assert vl.non_edl.timing.setup == pytest.approx(
            base_setup + scheme.resiliency_window
        )

    def test_edl_area_inflated(self, library):
        scheme = scheme_from_period(1.0)
        for c in (0.5, 2.0):
            vl = build_virtual_library(library, scheme, overhead=c)
            assert vl.edl.area == pytest.approx(
                vl.normal.area * (1 + c)
            )

    def test_arrival_limits(self, library):
        scheme = scheme_from_period(1.0)
        vl = build_virtual_library(library, scheme, overhead=1.0)
        assert vl.arrival_limit(LatchGroup.NON_EDL) == pytest.approx(
            scheme.window_open
        )
        assert vl.arrival_limit(LatchGroup.EDL) == pytest.approx(
            scheme.window_close
        )

    def test_negative_overhead_rejected(self, library):
        with pytest.raises(ValueError):
            build_virtual_library(library, scheme_from_period(1.0), -1.0)

    def test_group_area_ordering(self, library):
        scheme = scheme_from_period(1.0)
        vl = build_virtual_library(library, scheme, overhead=1.0)
        assert vl.group_area(LatchGroup.EDL) > vl.group_area(
            LatchGroup.NORMAL
        )
        assert vl.group_area(LatchGroup.NON_EDL) == pytest.approx(
            vl.group_area(LatchGroup.NORMAL)
        )
