"""Tests for the two-phase clock model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.clocks import ClockScheme, scheme_from_period


class TestClockScheme:
    def test_fig4_scheme_period(self):
        scheme = ClockScheme(2.5, 2.5, 2.5, 2.5)
        assert scheme.period == 10.0
        assert scheme.pi == 10.0
        assert scheme.max_path_delay == 12.5

    def test_resiliency_window_is_phi1(self):
        scheme = ClockScheme(1.0, 0.5, 2.0, 0.25)
        assert scheme.resiliency_window == 1.0

    def test_slave_window(self):
        scheme = ClockScheme(2.5, 2.5, 2.5, 2.5)
        assert scheme.slave_open == 5.0
        assert scheme.slave_close == 7.5

    def test_constraint_limits_fig4(self):
        """The example's forward and backward limits are both 7.5."""
        scheme = ClockScheme(2.5, 2.5, 2.5, 2.5)
        assert scheme.forward_limit == 7.5
        assert scheme.backward_limit == 7.5

    def test_window_open_close(self):
        scheme = ClockScheme(2.5, 2.5, 2.5, 2.5)
        assert scheme.window_open == 10.0
        assert scheme.window_close == 12.5

    def test_symmetric(self):
        assert ClockScheme(1, 2, 1, 2).is_symmetric()
        assert not ClockScheme(1, 2, 1.5, 2).is_symmetric()

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ClockScheme(1.0, -0.1, 1.0, 0.0)

    def test_zero_transparency_rejected(self):
        with pytest.raises(ValueError):
            ClockScheme(0.0, 1.0, 1.0, 1.0)

    def test_scaled(self):
        scheme = ClockScheme(1.0, 0.0, 1.5, 0.5).scaled(2.0)
        assert scheme.phi1 == 2.0
        assert scheme.phi2 == 3.0
        assert scheme.period == 6.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ClockScheme(1, 1, 1, 1).scaled(0.0)

    def test_frozen(self):
        scheme = ClockScheme(1, 1, 1, 1)
        with pytest.raises(AttributeError):
            scheme.phi1 = 2.0


class TestSchemeFromPeriod:
    def test_paper_recipe(self):
        """Section VI-A: phi1=0.3P, gamma1=0, phi2=0.35P, gamma2=0.05P."""
        scheme = scheme_from_period(1.0)
        assert scheme.phi1 == pytest.approx(0.30)
        assert scheme.gamma1 == 0.0
        assert scheme.phi2 == pytest.approx(0.35)
        assert scheme.gamma2 == pytest.approx(0.05)

    def test_pi_is_seventy_percent(self):
        scheme = scheme_from_period(2.0)
        assert scheme.period == pytest.approx(1.4)

    def test_max_path_delay_roundtrip(self):
        scheme = scheme_from_period(0.8)
        assert scheme.max_path_delay == pytest.approx(0.8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scheme_from_period(0.0)

    @given(st.floats(min_value=0.05, max_value=100.0))
    def test_recipe_invariants(self, period):
        scheme = scheme_from_period(period)
        assert scheme.max_path_delay == pytest.approx(period)
        assert scheme.window_open == pytest.approx(0.7 * period)
        # Recipe asymmetry: gamma1 = 0 but gamma2 = 0.05 P, so the
        # forward limit (0.65 P) is tighter than the backward (0.7 P).
        assert scheme.forward_limit == pytest.approx(0.65 * period)
        assert scheme.backward_limit == pytest.approx(0.7 * period)

    @given(
        st.floats(min_value=0.01, max_value=10),
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0.01, max_value=10),
        st.floats(min_value=0, max_value=10),
    )
    def test_identities(self, phi1, gamma1, phi2, gamma2):
        scheme = ClockScheme(phi1, gamma1, phi2, gamma2)
        assert scheme.max_path_delay == pytest.approx(
            scheme.period + scheme.phi1
        )
        assert scheme.window_close == pytest.approx(
            scheme.window_open + scheme.resiliency_window
        )
        assert scheme.slave_close == pytest.approx(scheme.forward_limit)
        # Constraint (7) bound: window_close minus slave opening.
        assert scheme.backward_limit == pytest.approx(
            scheme.window_close - scheme.slave_open
        )


class TestWaveforms:
    def test_waveform_lengths(self):
        scheme = ClockScheme(1, 1, 1, 1)
        waves = scheme.waveforms(cycles=2, resolution=16)
        assert len(waves["time"]) == 32
        assert set(waves["clk1"]) <= {0, 1}
        assert set(waves["clk2"]) <= {0, 1}

    def test_phases_do_not_overlap(self):
        scheme = ClockScheme(1.0, 0.5, 1.0, 0.5)
        waves = scheme.waveforms(cycles=1, resolution=120)
        overlap = [
            a and b for a, b in zip(waves["clk1"], waves["clk2"])
        ]
        assert not any(overlap)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            ClockScheme(1, 1, 1, 1).waveforms(cycles=0)
