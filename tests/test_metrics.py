"""Tests for the repro.metrics layer and its instrumentation hooks."""

import json

import pytest

from repro import metrics
from repro.errors import FlowStageError, stage_scope
from repro.sta import TimingEngine


class TestCollector:
    def test_counters_accumulate(self):
        collector = metrics.MetricsCollector()
        collector.count("x")
        collector.count("x", 2.5)
        assert collector.counters["x"] == 3.5

    def test_stage_records_wall_and_rss(self):
        collector = metrics.MetricsCollector()
        with collector.stage("work"):
            sum(range(1000))
        stats = collector.stages["work"]
        assert stats.calls == 1
        assert stats.wall_s >= 0.0
        assert stats.peak_rss_kb >= 0.0

    def test_stage_records_on_exception(self):
        collector = metrics.MetricsCollector()
        with pytest.raises(RuntimeError):
            with collector.stage("boom"):
                raise RuntimeError("x")
        assert collector.stages["boom"].calls == 1

    def test_merge_and_dict_round_trip(self):
        a = metrics.MetricsCollector()
        a.count("n", 2)
        with a.stage("s"):
            pass
        b = metrics.MetricsCollector()
        b.merge_dict(a.to_dict())
        b.merge(a)
        assert b.counters["n"] == 4
        assert b.stages["s"].calls == 2


class TestAmbient:
    def test_noop_without_collector(self):
        metrics.count("ignored")
        with metrics.stage_timer("ignored"):
            pass
        assert metrics.current() is None

    def test_collect_into_installs_and_restores(self):
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            assert metrics.current() is collector
            metrics.count("seen")
        assert metrics.current() is None
        assert collector.counters["seen"] == 1

    def test_stage_scope_feeds_ambient_collector(self):
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            with stage_scope("prepare"):
                pass
            with pytest.raises(FlowStageError):
                with stage_scope("retime"):
                    raise RuntimeError("boom")
        assert collector.stages["prepare"].calls == 1
        assert collector.stages["retime"].calls == 1


class TestTimingEngineCounters:
    def test_forward_cache_hit_miss(self, library, tiny_netlist):
        collector = metrics.MetricsCollector()
        engine = TimingEngine(tiny_netlist, library)
        with metrics.collect_into(collector):
            engine.forward_arrival("g1")
            engine.forward_arrival("g2")
            engine.forward_arrival("g3")
        assert collector.counters["sta.forward.query"] == 3
        assert collector.counters["sta.forward.compute"] == 1

    def test_backward_compute_once_per_endpoint(self, library, tiny_netlist):
        collector = metrics.MetricsCollector()
        engine = TimingEngine(tiny_netlist, library)
        endpoint = tiny_netlist.endpoints()[0].name
        with metrics.collect_into(collector):
            engine.backward_delay("g1", endpoint)
            engine.backward_delay("g2", endpoint)
        assert collector.counters["sta.backward_to.query"] == 2
        assert collector.counters["sta.backward_to.compute"] == 1

    def test_invalidate_counted(self, library, tiny_netlist):
        collector = metrics.MetricsCollector()
        engine = TimingEngine(tiny_netlist, library)
        with metrics.collect_into(collector):
            engine.invalidate()
        assert collector.counters["sta.invalidate"] == 1


class TestSolverCounters:
    def test_min_cost_flow_counts_backend(self):
        from fractions import Fraction

        from repro.retime.mincostflow import solve_min_cost_flow

        nodes = ["s", "t"]
        arcs = [("s", "t", 1)]
        demands = {"s": Fraction(-1), "t": Fraction(1)}
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            result = solve_min_cost_flow(nodes, arcs, demands)
        assert result.backend == "simplex"
        assert collector.counters["mcf.solves"] == 1
        assert collector.counters["mcf.solved.simplex"] == 1
        assert collector.counters["mcf.wall_s"] > 0


class TestBenchArtifacts:
    def test_write_bench_atomic_json(self, tmp_path):
        collector = metrics.MetricsCollector()
        collector.count("flow.runs", 2)
        payload = metrics.bench_report(collector, kind="suite", jobs=4)
        path = tmp_path / "BENCH_suite.json"
        metrics.write_bench(str(path), payload)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == metrics.BENCH_SCHEMA
        assert loaded["kind"] == "suite"
        assert loaded["jobs"] == 4
        assert loaded["counters"]["flow.runs"] == 2
        assert not path.with_suffix(".json.tmp").exists()

    def test_flow_run_emits_stage_and_flow_counters(self, library):
        from repro.circuits import build_benchmark
        from repro.flows import prepare_circuit, run_flow

        netlist = build_benchmark("s1488", library)
        scheme, _ = prepare_circuit(netlist, library)
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            run_flow("base", netlist, library, 1.0, scheme=scheme)
        assert collector.counters["flow.runs"] == 1
        assert collector.counters["flow.method.base"] == 1
        for stage in ("prepare", "retime", "sizing", "finalize"):
            assert collector.stages[stage].calls >= 1
        assert collector.counters["mcf.solves"] >= 1


class TestValueStats:
    def test_record_value_aggregates(self):
        collector = metrics.MetricsCollector()
        for v in (2.0, 0.5, 1.0):
            collector.record_value("sim.wall_s", v)
        stats = collector.values["sim.wall_s"]
        assert stats.count == 3
        assert stats.total == 3.5
        assert stats.min == 0.5
        assert stats.max == 2.0
        assert stats.last == 1.0

    def test_ambient_record_value(self):
        collector = metrics.MetricsCollector()
        metrics.record_value("orphan", 9.0)  # no collector: no-op
        with metrics.collect_into(collector):
            metrics.record_value("x", 4.0)
        assert collector.values["x"].total == 4.0
        assert "orphan" not in collector.values

    def test_values_merge_and_roundtrip(self):
        a = metrics.MetricsCollector()
        b = metrics.MetricsCollector()
        a.record_value("w", 1.0)
        b.record_value("w", 3.0)
        b.record_value("w", 0.25)
        a.merge(b)
        assert a.values["w"].count == 3
        assert a.values["w"].min == 0.25
        assert a.values["w"].max == 3.0
        c = metrics.MetricsCollector()
        c.merge_dict(a.to_dict())
        assert c.values["w"].count == 3
        assert c.values["w"].total == a.values["w"].total

    def test_values_key_absent_when_unused(self):
        """Schema stability: old artifacts gain no key until recorded."""
        collector = metrics.MetricsCollector()
        collector.count("flow.runs")
        assert "values" not in collector.to_dict()
        collector.record_value("w", 1.0)
        assert "values" in collector.to_dict()

    def test_sim_wall_s_is_a_value_not_a_counter(self, library):
        from repro.circuits import build_benchmark
        from repro.flows import prepare_circuit
        from repro.latches import SlavePlacement
        from repro.sim import estimate_error_rate

        netlist = build_benchmark("s1488", library)
        _, circuit = prepare_circuit(netlist, library)
        edl = {g.name for g in circuit.netlist.endpoints()}
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            estimate_error_rate(
                circuit, SlavePlacement.initial(), edl, cycles=2
            )
        assert "sim.wall_s" not in collector.counters
        assert collector.values["sim.wall_s"].count == 1
        assert collector.counters["sim.cycles"] == 2
