"""End-to-end integration: one circuit through every surface at once."""

import pytest

from repro.harness import ExperimentSuite


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(circuits=["s1488"], error_rate_cycles=48)


class TestCrossTableConsistency:
    """The tables are views over the same memoized outcomes; their
    numbers must agree with each other and with the raw outcomes."""

    def test_table5_matches_outcomes(self, suite):
        table = suite.table5()
        row = table.row_for("s1488")
        index = table.headers.index("medium:grar")
        outcome = suite.outcome("s1488", "grar", 1.0)
        assert row[index] == pytest.approx(outcome.total_area, abs=0.1)

    def test_table4_plus_comb_equals_table5(self, suite):
        seq = suite.table4().row_for("s1488")
        total = suite.table5().row_for("s1488")
        headers4 = suite.table4().headers
        headers5 = suite.table5().headers
        outcome = suite.outcome("s1488", "base", 0.5)
        seq_value = seq[headers4.index("low:base")]
        total_value = total[headers5.index("low:base")]
        assert total_value - seq_value == pytest.approx(
            outcome.comb_area, abs=0.2
        )

    def test_table6_counts_match_cost(self, suite):
        table = suite.table6()
        for method, label in (("base", "Base"), ("grar", "G")):
            row = table.row_for("s1488")
            # row_for returns the first (Base) row; fetch by pair:
            row = next(
                r for r in table.rows if r[0] == "s1488" and r[1] == label
            )
            outcome = suite.outcome("s1488", method, 0.5)
            assert row[2] == outcome.n_slaves
            assert row[3] == outcome.n_edl

    def test_sequential_area_formula(self, suite):
        """seq area = (slaves + masters + c * EDL) * latch_area."""
        for method in ("base", "grar", "rvl"):
            for c in (0.5, 2.0):
                outcome = suite.outcome("s1488", method, c)
                cost = outcome.cost
                expected = (
                    cost.n_slaves + cost.n_masters + c * cost.n_edl
                ) * cost.latch_area
                assert outcome.sequential_area == pytest.approx(expected)

    def test_edl_set_size_matches_count(self, suite):
        for method in ("base", "grar", "rvl", "evl", "nvl"):
            outcome = suite.outcome("s1488", method, 1.0)
            assert len(outcome.edl_endpoints) == outcome.n_edl

    def test_table2_path_column_equals_grar(self, suite):
        table = suite.table2()
        row = table.row_for("s1488")
        index = table.headers.index("high:path")
        outcome = suite.outcome("s1488", "grar", 2.0)
        assert row[index] == pytest.approx(outcome.total_area, abs=0.1)

    def test_all_tables_render(self, suite):
        for table in suite.all_tables():
            text = table.render()
            assert table.table_id in text
            assert len(text.splitlines()) >= 3

    def test_simulation_consistency_with_edl_sets(self, suite):
        """Non-EDL masters must be dynamically silent in the window
        for every approach (the designs are correct by construction)."""
        from repro.sim import estimate_error_rate

        for method in ("base", "grar", "rvl"):
            outcome = suite.outcome("s1488", method, 1.0)
            report = estimate_error_rate(
                outcome.circuit,
                outcome.retiming.placement,
                outcome.edl_endpoints,
                cycles=48,
            )
            assert report.non_edl_violations == 0
