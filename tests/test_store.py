"""The content-addressed artifact store and its fingerprint recipe.

Covers the cache-unification tentpole:

* one canonical fingerprint recipe (determinism, kind separation,
  content addressing — copies collide, edits miss);
* the two-tier store: LRU memory tier with per-namespace capacities
  and eviction counters, disk tier with atomic unique-tmp writes;
* torn/corrupted artifacts are detected, quarantined, and recomputed
  — never returned;
* concurrent multi-process writers on one store directory never
  produce a torn read;
* ``gc`` / ``stats`` / ``ls`` / ``clear`` bookkeeping;
* the suite-memo and scenario-memo namespaces resuming runs across
  suite instances, and the unique-tmp regression for the legacy
  fixed ``{path}.tmp`` race;
* the acceptance oracle: store-backed flows are bit-identical to
  store-off runs.
"""

import json
import multiprocessing
import os
import pickle

import pytest

from repro import metrics
from repro.cells import default_library
from repro.circuits.fig4 import fig4_netlist
from repro.flows import run_flow
from repro.harness import ExperimentSuite
from repro.harness.experiments import FlowRecord
from repro.scenarios.engine import run_scenarios
from repro.store import (
    ENGINE_VERSION,
    ArtifactStore,
    Fingerprint,
    StoreError,
    arena_fingerprint,
    atomic_write_text,
    circuit_fingerprint,
    config_fingerprint,
    content_digest,
    decode_memo_cell_key,
    get_store,
    library_fingerprint,
    memo_cell_key,
    netlist_fingerprint,
    open_store,
    set_default_store,
    unique_tmp_name,
    use_store,
)

LIBRARY = default_library()


class TestFingerprint:
    def test_deterministic(self):
        a = Fingerprint("t").feed("x", 1).hexdigest()
        b = Fingerprint("t").feed("x", 1).hexdigest()
        assert a == b
        assert len(a) == 64

    def test_kind_separates(self):
        a = Fingerprint("a").feed("x").hexdigest()
        b = Fingerprint("b").feed("x").hexdigest()
        assert a != b

    def test_parts_are_terminated_not_concatenated(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = Fingerprint("t").feed("ab", "c").hexdigest()
        b = Fingerprint("t").feed("a", "bc").hexdigest()
        assert a != b

    def test_engine_version_salts_everything(self, monkeypatch):
        before = Fingerprint("t").feed("x").hexdigest()
        monkeypatch.setattr(
            "repro.store.fingerprint.ENGINE_VERSION",
            ENGINE_VERSION + "-next",
        )
        assert Fingerprint("t").feed("x").hexdigest() != before

    def test_content_digest_lengths(self):
        full = content_digest("hello")
        assert len(full) == 64
        assert content_digest("hello", 16) == full[:16]

    def test_netlist_copies_collide(self, small_netlist):
        assert netlist_fingerprint(small_netlist) == netlist_fingerprint(
            small_netlist.copy()
        )

    def test_different_netlists_miss(self, small_netlist, tiny_netlist):
        assert netlist_fingerprint(small_netlist) != netlist_fingerprint(
            tiny_netlist
        )

    def test_library_fingerprint_is_content_based(self):
        # Two independently constructed libraries with the same cells
        # are the same artifact — the fingerprint must not depend on
        # object identity (cross-process validity).
        a = default_library()
        b = default_library()
        assert a is not b
        assert library_fingerprint(a) == library_fingerprint(b)
        assert library_fingerprint(None) == library_fingerprint(None)
        assert library_fingerprint(a) != library_fingerprint(
            default_library(edl_overhead=2.0)
        )

    def test_circuit_fingerprint_conflict_policy(self, small_prepared):
        _, circuit = small_prepared
        assert circuit_fingerprint(circuit, "error") != circuit_fingerprint(
            circuit, "ignore"
        )

    def test_arena_fingerprint_stable(self, tiny_netlist):
        from repro.sta.engine import TimingEngine

        engine = TimingEngine(tiny_netlist, LIBRARY)
        a = arena_fingerprint(tiny_netlist, engine.calculator)
        b = arena_fingerprint(tiny_netlist.copy(), engine.calculator)
        assert a == b

    def test_config_fingerprint_order_independent(self):
        a = config_fingerprint("k", {"x": 1, "y": 2})
        b = config_fingerprint("k", {"y": 2, "x": 1})
        assert a == b
        assert a != config_fingerprint("k", {"x": 1, "y": 3})

    def test_memo_cell_key_roundtrip(self):
        key = ("s1196", "grar", 0.5)
        assert decode_memo_cell_key(memo_cell_key(key)) == key

    def test_memo_cell_key_survives_pipes(self):
        key = ("a|b", "m", 1.0)
        assert decode_memo_cell_key(memo_cell_key(key)) == key

    def test_legacy_pipe_keys_still_decode(self):
        assert decode_memo_cell_key("s1196|grar|0.5") == (
            "s1196", "grar", "0.5",
        )


class TestMemoryTier:
    def test_miss_then_hit(self):
        store = ArtifactStore()
        assert store.get("ns", "k") is None
        store.put("ns", "k", 41)
        assert store.get("ns", "k") == 41

    def test_get_or_compute(self):
        store = ArtifactStore()
        calls = []
        value, was_hit = store.get_or_compute(
            "ns", "k", lambda: calls.append(1) or "v"
        )
        assert (value, was_hit) == ("v", False)
        value, was_hit = store.get_or_compute(
            "ns", "k", lambda: calls.append(1) or "v"
        )
        assert (value, was_hit) == ("v", True)
        assert len(calls) == 1

    def test_lru_eviction_order(self):
        store = ArtifactStore(capacity=2)
        store.put("ns", "a", 1)
        store.put("ns", "b", 2)
        store.get("ns", "a")  # refresh a; b is now least-recent
        store.put("ns", "c", 3)
        assert store.get("ns", "b") is None
        assert store.get("ns", "a") == 1
        assert store.get("ns", "c") == 3

    def test_per_namespace_capacity(self):
        store = ArtifactStore(capacity=2, capacities={"big": 4})
        assert store.capacity_of("ns") == 2
        assert store.capacity_of("big") == 4
        for i in range(4):
            store.put("big", f"k{i}", i)
        assert store.get("big", "k0") == 0  # nothing evicted

    def test_set_capacity_trims(self):
        store = ArtifactStore(capacity=8)
        for i in range(8):
            store.put("ns", f"k{i}", i)
        store.set_capacity("ns", 2)
        assert store.get("ns", "k0") is None
        assert store.get("ns", "k7") == 7

    def test_eviction_counter(self):
        collector = metrics.MetricsCollector()
        store = ArtifactStore(capacity=1)
        with metrics.collect_into(collector):
            store.put("ns", "a", 1)
            store.put("ns", "b", 2)
            store.put("ns", "c", 3)
        assert collector.counters["store.ns.evictions"] == 2

    def test_hit_miss_counters(self):
        collector = metrics.MetricsCollector()
        store = ArtifactStore()
        with metrics.collect_into(collector):
            store.get("ns", "k")
            store.put("ns", "k", 1)
            store.get("ns", "k")
        assert collector.counters["store.ns.misses"] == 1
        assert collector.counters["store.ns.hits"] == 1
        assert collector.counters["store.ns.mem_hits"] == 1

    def test_clear_memory_is_per_namespace(self):
        store = ArtifactStore()
        store.put("a", "k", 1)
        store.put("b", "k", 2)
        store.clear_memory("a")
        assert store.get("a", "k") is None
        assert store.get("b", "k") == 2


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        root = tmp_path / "cas"
        ArtifactStore(root).put("ns", "deadbeef", {"x": [1, 2]})
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            fresh = ArtifactStore(root)  # a second "process"
            assert fresh.get("ns", "deadbeef") == {"x": [1, 2]}
        assert collector.counters["store.ns.disk_hits"] == 1

    def test_artifact_format_self_describes(self, tmp_path):
        store = ArtifactStore(tmp_path / "cas")
        store.put("ns", "k", 7)
        (path,) = (tmp_path / "cas" / "ns").glob("*.art")
        raw = path.read_bytes()
        magic, digest, payload = raw.split(b"\n", 2)
        assert magic == b"repro-store/1"
        import hashlib

        assert hashlib.sha256(payload).hexdigest() == digest.decode()
        envelope = pickle.loads(payload)
        assert envelope["namespace"] == "ns"
        assert envelope["key"] == "k"
        assert envelope["value"] == 7

    def test_schema_stamp_mismatch_raises(self, tmp_path):
        root = tmp_path / "cas"
        ArtifactStore(root)
        stamp = root / "store.json"
        stamp.write_text(json.dumps({"schema": "repro-store/0"}))
        with pytest.raises(StoreError):
            ArtifactStore(root)

    def test_unsafe_namespace_and_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "cas")
        for bad in ("../evil", "a/b", "", ".hidden"):
            with pytest.raises(StoreError):
                store.put(bad, "k", 1)
            with pytest.raises(StoreError):
                store.put("ns", bad, 1)

    def test_unpicklable_value_stays_in_memory(self, tmp_path):
        collector = metrics.MetricsCollector()
        store = ArtifactStore(tmp_path / "cas")
        with metrics.collect_into(collector):
            store.put("ns", "k", lambda: None)
        assert collector.counters["store.ns.unpicklable"] == 1
        assert store.get("ns", "k") is not None  # memory tier kept it
        assert not list((tmp_path / "cas" / "ns").glob("*.art"))

    def test_memory_only_put(self, tmp_path):
        store = ArtifactStore(tmp_path / "cas")
        store.put("ns", "k", 1, persist=False)
        assert not (tmp_path / "cas" / "ns").exists()
        assert store.get("ns", "k") == 1


class TestCorruption:
    def _single_artifact(self, root):
        (path,) = (root / "ns").glob("*.art")
        return path

    def test_truncated_artifact_is_quarantined(self, tmp_path):
        root = tmp_path / "cas"
        ArtifactStore(root).put("ns", "k", list(range(100)))
        path = self._single_artifact(root)
        path.write_bytes(path.read_bytes()[:-10])  # torn write
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            fresh = ArtifactStore(root)
            assert fresh.get("ns", "k", default="MISS") == "MISS"
        assert collector.counters["store.ns.corrupt"] == 1
        assert not path.exists()  # moved out of the namespace dir
        assert list((root / "quarantine").iterdir())

    def test_garbage_artifact_is_quarantined(self, tmp_path):
        root = tmp_path / "cas"
        store = ArtifactStore(root)
        store.put("ns", "k", 1)
        self._single_artifact(root).write_bytes(b"not an artifact")
        fresh = ArtifactStore(root)
        assert fresh.get("ns", "k") is None

    def test_corrupt_artifact_is_recomputed(self, tmp_path):
        root = tmp_path / "cas"
        ArtifactStore(root).put("ns", "k", "good")
        self._single_artifact(root).write_bytes(b"repro-store/1\nxx\nyy")
        fresh = ArtifactStore(root)
        value, was_hit = fresh.get_or_compute("ns", "k", lambda: "good")
        assert (value, was_hit) == ("good", False)
        # The recompute re-wrote a valid artifact.
        third = ArtifactStore(root)
        assert third.get("ns", "k") == "good"

    def test_wrong_envelope_key_rejected(self, tmp_path):
        # An artifact renamed to another key must not serve it.
        root = tmp_path / "cas"
        store = ArtifactStore(root)
        store.put("ns", "aaaa", 1)
        path = self._single_artifact(root)
        path.rename(path.with_name("bbbb.art"))
        fresh = ArtifactStore(root)
        assert fresh.get("ns", "bbbb") is None


class TestAtomicWrites:
    def test_unique_tmp_names_embed_pid(self, tmp_path):
        target = str(tmp_path / "out.json")
        names = {unique_tmp_name(target) for _ in range(8)}
        assert len(names) == 8  # never the fixed "{path}.tmp"
        for name in names:
            assert str(os.getpid()) in name
            assert name.endswith(".tmp")

    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), "hello")
        assert target.read_text() == "hello"
        assert list(tmp_path.iterdir()) == [target]  # no stray tmp


def _hammer_writer(root, worker):
    """Write one key repeatedly; payload varies per worker/iteration."""
    store = ArtifactStore(root)
    for i in range(30):
        store.put("ns", "contended", {"worker": worker, "i": i, "pad": "x" * 4096})


class TestConcurrentWriters:
    def test_parallel_writers_never_produce_torn_reads(self, tmp_path):
        root = str(tmp_path / "cas")
        ArtifactStore(root).put(
            "ns", "contended", {"worker": -1, "i": -1, "pad": "x" * 4096}
        )
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_writer, args=(root, w))
            for w in range(4)
        ]
        for proc in procs:
            proc.start()
        # Read concurrently with the writers: every read must decode
        # to some writer's complete payload — old or new, never torn.
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            while any(proc.is_alive() for proc in procs):
                fresh = ArtifactStore(root)
                value = fresh.get("ns", "contended")
                assert value is not None
                assert value["pad"] == "x" * 4096
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        assert not collector.counters.get("store.ns.corrupt")
        # No stray tmp files once every writer exited cleanly.
        assert not list((tmp_path / "cas" / "ns").glob("*.tmp"))


class TestMaintenance:
    def test_ls_stats_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "cas")
        store.put("a", "k1", 1)
        store.put("a", "k2", 2)
        store.put("b", "k1", 3)
        rows = store.ls()
        assert {(r["namespace"], r["key"]) for r in rows} == {
            ("a", "k1"), ("a", "k2"), ("b", "k1"),
        }
        stats = store.stats()
        assert stats["schema"] == "repro-store/1"
        assert stats["disk"]["a"]["artifacts"] == 2
        assert stats["disk_bytes"] > 0
        assert store.clear("a") == {"removed": 2}
        assert store.ls("a") == []
        assert store.get("b", "k1") == 3

    def test_gc_max_age(self, tmp_path):
        store = ArtifactStore(tmp_path / "cas")
        store.put("ns", "old", 1)
        path = next((tmp_path / "cas" / "ns").glob("*.art"))
        ancient = path.stat().st_mtime - 10_000
        os.utime(path, (ancient, ancient))
        store.put("ns", "new", 2)
        result = store.gc(max_age_s=3600)
        assert result["removed"] == 1
        assert [r["key"] for r in store.ls()] == ["new"]

    def test_gc_max_bytes_evicts_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "cas")
        for i in range(4):
            store.put("ns", f"k{i}", "x" * 1000)
            path = next((tmp_path / "cas" / "ns").glob(f"k{i}.art"))
            stamp = 1_000_000 + i
            os.utime(path, (stamp, stamp))
        total = sum(r["bytes"] for r in store.ls())
        result = store.gc(max_bytes=total // 2)
        assert result["remaining_bytes"] <= total // 2
        survivors = {r["key"] for r in store.ls()}
        assert "k3" in survivors and "k0" not in survivors

    def test_gc_sweeps_quarantine(self, tmp_path):
        root = tmp_path / "cas"
        ArtifactStore(root).put("ns", "k", 1)
        path = next((root / "ns").glob("*.art"))
        path.write_bytes(b"garbage")
        ArtifactStore(root).get("ns", "k")  # quarantines
        assert list((root / "quarantine").iterdir())
        ArtifactStore(root).gc()
        assert not list((root / "quarantine").iterdir())


class TestAmbientStore:
    def test_use_store_scopes_the_active_store(self, tmp_path):
        scoped = ArtifactStore(tmp_path / "cas")
        default = get_store()
        with use_store(scoped):
            assert get_store() is scoped
        assert get_store() is default

    def test_open_store_pass_through(self, tmp_path):
        assert open_store(None) is None
        store = ArtifactStore(tmp_path / "cas")
        assert open_store(store) is store
        opened = open_store(str(tmp_path / "cas"), capacity=3)
        assert opened.persistent
        assert opened.capacity_of("ns") == 3

    def test_set_default_store_restores(self):
        replacement = ArtifactStore()
        previous = set_default_store(replacement)
        try:
            assert get_store() is replacement
        finally:
            set_default_store(previous)


class TestFlowIntegration:
    def test_store_off_is_bit_identical(self, tmp_path):
        netlist = fig4_netlist()
        with use_store(ArtifactStore(tmp_path / "cas")):
            stored = run_flow("grar", netlist.copy(), LIBRARY, 1.0)
        with use_store(ArtifactStore()):
            plain = run_flow("grar", netlist.copy(), LIBRARY, 1.0)
        assert stored.total_area == plain.total_area
        assert stored.cost.n_slaves == plain.cost.n_slaves
        assert stored.cost.n_edl == plain.cost.n_edl

    def test_compiled_problem_served_from_disk(self, tmp_path):
        netlist = fig4_netlist()
        run_flow("grar", netlist.copy(), LIBRARY, 1.0,
                 store=str(tmp_path / "cas"))
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            # A fresh store instance on the same root models a new
            # process: only the disk tier can serve it.
            run_flow("grar", netlist.copy(), LIBRARY, 1.0,
                     store=str(tmp_path / "cas"))
        assert collector.counters["store.compiled-grar.disk_hits"] >= 1
        assert not collector.counters.get("retime.compile.misses")


class TestSuiteMemoNamespace:
    def test_suites_resume_each_other_via_store(self, tmp_path):
        store_dir = str(tmp_path / "cas")
        first = ExperimentSuite(
            circuits=["s1196"], error_rate_cycles=16, store=store_dir
        )
        first.outcome("s1196", "base", 1.0)
        first.checkpoint(force=True)
        second = ExperimentSuite(
            circuits=["s1196"], error_rate_cycles=16, store=store_dir
        )
        resumed = second._outcomes[("s1196", "base", 1.0)]
        assert isinstance(resumed, FlowRecord)
        assert resumed.total_area == pytest.approx(
            first.outcome("s1196", "base", 1.0).total_area
        )

    def test_config_mismatch_gets_fresh_memo(self, tmp_path):
        store_dir = str(tmp_path / "cas")
        first = ExperimentSuite(
            circuits=["s1196"], error_rate_cycles=16, store=store_dir
        )
        first.outcome("s1196", "base", 1.0)
        first.checkpoint(force=True)
        other = ExperimentSuite(
            circuits=["s1196"], error_rate_cycles=32, store=store_dir
        )
        assert ("s1196", "base", 1.0) not in other._outcomes

    def test_memory_only_store_never_carries_the_memo(self):
        suite = ExperimentSuite(
            circuits=["s1196"], error_rate_cycles=16,
            store=ArtifactStore(),
        )
        assert not suite._store_memo_enabled()

    def test_checkpoint_uses_unique_tmp_names(self, tmp_path, monkeypatch):
        sources = []
        real_replace = os.replace

        def spy(src, dst):
            sources.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.store.os.replace", spy)
        memo = str(tmp_path / "memo.json")
        suite = ExperimentSuite(
            circuits=["s1196"], error_rate_cycles=16, memo_path=memo
        )
        suite.outcome("s1196", "base", 1.0)
        suite.checkpoint(force=True)
        memo_sources = [s for s in sources if s.startswith(memo)]
        assert memo_sources
        for src in memo_sources:
            # The legacy fixed "{path}.tmp" name collides across
            # concurrent suites; unique names embed the pid.
            assert src != memo + ".tmp"
            assert str(os.getpid()) in src


class TestScenarioMemoNamespace:
    def _matrix(self, tmp_path, **overrides):
        kwargs = dict(
            corners=("nominal",),
            upsets=("seu",),
            policies=("grar",),
            cycles=16,
            seed=13,
            store=str(tmp_path / "cas"),
        )
        kwargs.update(overrides)
        return run_scenarios(
            [("fig4", fig4_netlist())], LIBRARY, **kwargs
        )

    def test_second_sweep_resumes_from_store(self, tmp_path):
        first = self._matrix(tmp_path)
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            second = self._matrix(tmp_path)
        assert collector.counters["scenarios.memo_hits"] == 1
        assert second.to_json() == first.to_json()

    def test_config_mismatch_reruns(self, tmp_path):
        self._matrix(tmp_path)
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            self._matrix(tmp_path, seed=14)
        assert not collector.counters.get("scenarios.memo_hits")
