"""Section III: "each pipeline stage can be retimed independently
without any loss of optimality."

In the cut-at-flops formulation, a stage's slave positions and EDL
status depend only on its own combinational cloud; logic in a
different stage must not influence them.  Built here as a two-stage
pipeline whose second stage is perturbed between runs.
"""

import pytest

from repro.clocks import ClockScheme
from repro.flows import prepare_circuit
from repro.latches import TwoPhaseCircuit
from repro.netlist import NetlistBuilder
from repro.retime import grar_retime


def two_stage(library, second_stage_wide):
    """in -> [chain A] -> ffs -> [chain B] -> out; B's depth varies."""
    builder = NetlistBuilder("pipe2", library)
    a = builder.input("a")
    b = builder.input("b")

    # Stage A: a fixed 6-gate cone.
    builder.gate("a1", "NAND", [a, b])
    builder.gate("a2", "XOR", ["a1", b])
    builder.gate("a3", "INV", ["a2"])
    builder.gate("a4", "AND", ["a3", a])
    builder.gate("a5", "OR", ["a4", "a1"])
    builder.gate("a6", "INV", ["a5"])
    builder.flop("ff0", "a6")
    builder.flop("ff1", "a4")

    # Stage B: depth depends on the flag.
    depth = 9 if second_stage_wide else 3
    previous = "ff0"
    for k in range(depth):
        builder.gate(f"b{k}", "XOR", [previous, "ff1"])
        previous = f"b{k}"
    builder.output("y", previous)
    return builder.build()


@pytest.fixture()
def shared_scheme(library):
    """One clock wide enough for both variants of the pipeline."""
    netlist = two_stage(library, second_stage_wide=True)
    scheme, _ = prepare_circuit(netlist, library)
    return scheme


class TestStageIndependence:
    def stage_a_sites(self, library, scheme, wide):
        netlist = two_stage(library, wide)
        circuit = TwoPhaseCircuit(netlist, scheme, library)
        result = grar_retime(circuit, overhead=1.0)
        stage_a = {"a", "b", "a1", "a2", "a3", "a4", "a5", "a6"}
        return {
            site
            for site, _ in result.placement.latch_sites(netlist)
            if site in stage_a
        }, result

    def test_stage_a_unaffected_by_stage_b(self, library, shared_scheme):
        narrow_sites, narrow = self.stage_a_sites(
            library, shared_scheme, wide=False
        )
        wide_sites, wide = self.stage_a_sites(
            library, shared_scheme, wide=True
        )
        assert narrow_sites == wide_sites

    def test_stage_a_edl_unaffected(self, library, shared_scheme):
        _, narrow = self.stage_a_sites(library, shared_scheme, wide=False)
        _, wide = self.stage_a_sites(library, shared_scheme, wide=True)
        narrow_a = {
            e for e in narrow.edl_endpoints if e.startswith("ff")
        }
        wide_a = {e for e in wide.edl_endpoints if e.startswith("ff")}
        assert narrow_a == wide_a

    def test_stage_b_does_change(self, library, shared_scheme):
        """Sanity: the perturbation is real — stage B differs."""
        netlist_n = two_stage(library, False)
        netlist_w = two_stage(library, True)
        assert len(netlist_n.comb_gates()) != len(netlist_w.comb_gates())
