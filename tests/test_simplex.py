"""Tests for the network-simplex min-cost-flow solver."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.retime.simplex import (
    InfeasibleFlowError,
    NetworkSimplex,
    UnboundedFlowError,
    WarmBasis,
)


def solve(nodes, arcs, demands):
    simplex = NetworkSimplex(nodes, arcs, demands)
    result = simplex.solve()
    assert simplex.verify(result) == []
    return result


class TestBasics:
    def test_single_arc(self):
        result = solve(
            ["s", "t"], [("s", "t", 3)], {"s": Fraction(-2), "t": Fraction(2)}
        )
        assert result.objective == 6
        assert list(result.flows.values()) == [Fraction(2)]

    def test_two_routes_picks_cheap(self):
        nodes = ["s", "a", "b", "t"]
        arcs = [
            ("s", "a", 1), ("a", "t", 1),
            ("s", "b", 5), ("b", "t", 5),
        ]
        demands = {"s": Fraction(-1), "t": Fraction(1)}
        result = solve(nodes, arcs, demands)
        assert result.objective == 2

    def test_zero_demand_zero_flow(self):
        result = solve(["a", "b"], [("a", "b", 1)], {})
        assert result.objective == 0
        assert result.flows == {}

    def test_unbalanced_rejected(self):
        with pytest.raises(InfeasibleFlowError):
            NetworkSimplex(["a"], [], {"a": Fraction(1)})

    def test_disconnected_infeasible(self):
        simplex = NetworkSimplex(
            ["a", "b"], [], {"a": Fraction(-1), "b": Fraction(1)}
        )
        with pytest.raises(InfeasibleFlowError):
            simplex.solve()

    def test_negative_cycle_unbounded(self):
        simplex = NetworkSimplex(
            ["a", "b"],
            [("a", "b", -1), ("b", "a", -1)],
            {},
        )
        with pytest.raises(UnboundedFlowError):
            simplex.solve()

    def test_negative_cost_arc_ok(self):
        """Negative costs without negative cycles are fine (the
        retiming graph's Vm bound edges have cost -1)."""
        result = solve(
            ["s", "t"],
            [("s", "t", -2), ("t", "s", 5)],
            {"s": Fraction(-1), "t": Fraction(1)},
        )
        assert result.objective == -2

    def test_fractional_demands(self):
        result = solve(
            ["s", "a", "t"],
            [("s", "a", 1), ("a", "t", 1), ("s", "t", 3)],
            {
                "s": Fraction(-3, 2),
                "a": Fraction(1, 2),
                "t": Fraction(1),
            },
        )
        # s->a carries 3/2? a absorbs 1/2 and forwards 1 to t.
        assert result.objective == Fraction(3, 2) + 1

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            NetworkSimplex(["a", "a"], [], {})

    def test_potentials_integral(self):
        result = solve(
            ["s", "m", "t"],
            [("s", "m", 2), ("m", "t", 7), ("s", "t", 11)],
            {"s": Fraction(-2), "m": Fraction(0), "t": Fraction(2)},
        )
        for value in result.potentials.values():
            assert isinstance(value, int)


class TestTransportation:
    def test_classic_instance(self):
        """2 suppliers x 3 consumers transportation problem, checked
        against networkx."""
        nodes = ["s1", "s2", "c1", "c2", "c3"]
        arcs = [
            ("s1", "c1", 4), ("s1", "c2", 2), ("s1", "c3", 5),
            ("s2", "c1", 3), ("s2", "c2", 6), ("s2", "c3", 1),
        ]
        demands = {
            "s1": Fraction(-30), "s2": Fraction(-20),
            "c1": Fraction(15), "c2": Fraction(20), "c3": Fraction(15),
        }
        result = solve(nodes, arcs, demands)

        graph = nx.DiGraph()
        for node, demand in demands.items():
            graph.add_node(node, demand=int(demand))
        for tail, head, cost in arcs:
            graph.add_edge(tail, head, weight=cost)
        expected = nx.min_cost_flow_cost(graph)
        assert result.objective == expected


@st.composite
def flow_instances(draw):
    """Random connected min-cost-flow instances with integer demands."""
    n = draw(st.integers(min_value=2, max_value=7))
    nodes = [f"n{i}" for i in range(n)]
    # A spanning chain guarantees connectivity both ways.
    arcs = []
    for i in range(n - 1):
        arcs.append((nodes[i], nodes[i + 1], draw(st.integers(0, 9))))
        arcs.append((nodes[i + 1], nodes[i], draw(st.integers(0, 9))))
    extra = draw(st.integers(min_value=0, max_value=8))
    for _ in range(extra):
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes))
        if a != b:
            arcs.append((a, b, draw(st.integers(0, 9))))
    supplies = [draw(st.integers(-5, 5)) for _ in range(n - 1)]
    supplies.append(-sum(supplies))
    demands = {node: Fraction(s) for node, s in zip(nodes, supplies)}
    return nodes, arcs, demands


class TestAgainstNetworkx:
    @given(flow_instances())
    @settings(max_examples=60, deadline=None)
    def test_objective_matches_networkx(self, instance):
        nodes, arcs, demands = instance
        result = solve(nodes, arcs, demands)

        graph = nx.MultiDiGraph()
        for node, demand in demands.items():
            graph.add_node(node, demand=int(demand))
        for tail, head, cost in arcs:
            graph.add_edge(tail, head, weight=cost)
        expected = nx.min_cost_flow_cost(graph)
        assert result.objective == expected


TRANSPORT = dict(
    nodes=["s1", "s2", "c1", "c2", "c3"],
    arcs=[
        ("s1", "c1", 4), ("s1", "c2", 2), ("s1", "c3", 5),
        ("s2", "c1", 3), ("s2", "c2", 6), ("s2", "c3", 1),
    ],
)


def _transport_demands(scale=1):
    return {
        "s1": Fraction(-30 * scale), "s2": Fraction(-20 * scale),
        "c1": Fraction(15 * scale), "c2": Fraction(20 * scale),
        "c3": Fraction(15 * scale),
    }


class TestWarmStart:
    def test_identical_demands_take_zero_pivots(self):
        cold = NetworkSimplex(**TRANSPORT, demands=_transport_demands())
        first = cold.solve()
        basis = cold.export_basis()
        assert basis is not None and basis.real_arcs

        warm = NetworkSimplex(
            **TRANSPORT, demands=_transport_demands(), warm_basis=basis
        )
        second = warm.solve()
        assert warm.basis_reused
        assert second.iterations == 0
        assert second.objective == first.objective
        assert second.flows == first.flows
        assert warm.verify(second) == []

    def test_changed_demands_repair_to_the_same_optimum(self):
        cold = NetworkSimplex(**TRANSPORT, demands=_transport_demands())
        cold.solve()
        basis = cold.export_basis()

        warm = NetworkSimplex(
            **TRANSPORT, demands=_transport_demands(scale=2),
            warm_basis=basis,
        )
        result = warm.solve()
        assert warm.basis_reused
        assert warm.verify(result) == []
        oracle = solve(
            TRANSPORT["nodes"], TRANSPORT["arcs"], _transport_demands(2)
        )
        assert result.objective == oracle.objective

    def test_corrupt_basis_falls_back_to_cold_start(self):
        # A cycle (not a forest) must be rejected, not trusted.
        bad = WarmBasis(n=5, m=6, real_arcs=(0, 1, 3, 4))
        warm = NetworkSimplex(
            **TRANSPORT, demands=_transport_demands(), warm_basis=bad
        )
        result = warm.solve()
        assert not warm.basis_reused
        assert warm.verify(result) == []
        oracle = solve(
            TRANSPORT["nodes"], TRANSPORT["arcs"], _transport_demands()
        )
        assert result.objective == oracle.objective

    def test_mismatched_shape_falls_back(self):
        stale = WarmBasis(n=3, m=2, real_arcs=(0,))
        warm = NetworkSimplex(
            **TRANSPORT, demands=_transport_demands(), warm_basis=stale
        )
        result = warm.solve()
        assert not warm.basis_reused
        assert warm.verify(result) == []

    @given(flow_instances(), flow_instances())
    @settings(max_examples=40, deadline=None)
    def test_warm_start_matches_cold_on_random_pairs(self, first, second):
        """Solve A cold, then reuse A's basis on B's demands whenever
        the instances share a shape — the warm objective must equal the
        cold one."""
        nodes, arcs, demands_a = first
        _, _, demands_b = second
        if len(demands_b) != len(demands_a):
            demands_b = demands_a
        try:
            cold_a = solve(nodes, arcs, demands_a)
        except InfeasibleFlowError:
            return
        simplex_a = NetworkSimplex(nodes, arcs, demands_a)
        simplex_a.solve()
        basis = simplex_a.export_basis()

        demands_b = dict(zip(nodes, demands_b.values()))
        try:
            oracle = solve(nodes, arcs, demands_b)
        except InfeasibleFlowError:
            return
        warm = NetworkSimplex(nodes, arcs, demands_b, warm_basis=basis)
        result = warm.solve()
        assert warm.verify(result) == []
        assert result.objective == oracle.objective
