"""Tests for the timed logic simulator and error-rate estimation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flows import prepare_circuit, run_flow
from repro.latches import SlavePlacement
from repro.retime import base_retime
from repro.sim import (
    TimedSimulator,
    VectorSource,
    Waveform,
    estimate_error_rate,
    random_vectors,
)


class TestWaveform:
    def test_value_at(self):
        wave = Waveform(initial=0, events=[(1.0, 1), (2.0, 0)])
        assert wave.value_at(0.5) == 0
        assert wave.value_at(1.0) == 1
        assert wave.value_at(1.5) == 1
        assert wave.value_at(3.0) == 0
        assert wave.final == 0

    def test_transition_times_prunes_null_events(self):
        wave = Waveform(initial=0, events=[(1.0, 0), (2.0, 1), (3.0, 1)])
        assert wave.transition_times() == [2.0]

    def test_step(self):
        assert Waveform.step(0, 1.0, 1).events == [(1.0, 1)]
        assert Waveform.step(1, 1.0, 1).events == []

    def test_normalized_sorts_and_dedups(self):
        wave = Waveform(initial=0, events=[(2.0, 1), (1.0, 1), (3.0, 1)])
        assert wave.normalized().events == [(1.0, 1)]


class TestVectors:
    def test_deterministic(self):
        a = list(random_vectors(["x", "y"], 5, seed=3))
        b = list(random_vectors(["x", "y"], 5, seed=3))
        assert a == b

    def test_toggle_probability_bounds(self):
        with pytest.raises(ValueError):
            VectorSource(["x"], toggle_probability=1.5)

    def test_zero_toggle_is_constant(self):
        source = VectorSource(["x", "y"], seed=1, toggle_probability=0.0)
        first = source.next_vector()
        assert source.next_vector() == first


class TestSimulatorSemantics:
    def test_final_values_match_steady_state(self, small_prepared):
        """After all transients, every net equals the boolean
        evaluation of the launched values."""
        _, circuit = small_prepared
        simulator = TimedSimulator(circuit)
        netlist = circuit.netlist
        library = circuit.library
        placement = SlavePlacement.initial()
        state = {}
        launch = {g.name: (hash(g.name) & 1) for g in netlist.sources()}
        waves = simulator.run_cycle(launch, placement, state)

        expected = dict(launch)
        for name in netlist.topo_order():
            gate = netlist[name]
            if not gate.is_comb:
                continue
            cell = library[gate.cell]
            expected[name] = cell.evaluate(
                [expected[f] for f in gate.fanins]
            )
        for name, value in expected.items():
            assert waves[name].final == value, name

    def test_latch_holds_until_open(self, small_prepared):
        """No net downstream of an initial-position slave toggles
        before the transparency opening."""
        _, circuit = small_prepared
        simulator = TimedSimulator(circuit)
        placement = SlavePlacement.initial()
        state = {}
        launch = {g.name: 1 for g in circuit.netlist.sources()}
        waves = simulator.run_cycle(launch, placement, state)
        t_open = circuit.scheme.slave_open
        for gate in circuit.netlist.comb_gates():
            for when in waves[gate.name].transition_times():
                assert when >= t_open - 1e-12

    def test_cross_cycle_state_held(self, small_prepared):
        _, circuit = small_prepared
        simulator = TimedSimulator(circuit)
        placement = SlavePlacement.initial()
        state = {}
        launch = {g.name: 1 for g in circuit.netlist.sources()}
        simulator.run_cycle(launch, placement, state)
        held = [v for k, v in state.items() if k.startswith("latch:")]
        assert held and all(v in (0, 1) for v in held)

    def test_simulated_arrivals_bounded_by_sta(self, small_prepared):
        """Dynamic transition times never exceed the static arrival."""
        _, circuit = small_prepared
        simulator = TimedSimulator(circuit)
        placement = SlavePlacement.initial()
        state = {}
        source = VectorSource(
            [g.name for g in circuit.netlist.sources()], seed=11
        )
        static = circuit.endpoint_arrivals(placement)
        for _ in range(6):
            waves = simulator.run_cycle(
                source.next_vector(), placement, state
            )
            for gate in circuit.netlist.endpoints():
                key = (
                    f"{gate.name}::d" if gate.is_flop else gate.name
                )
                for when in waves[key].transition_times():
                    assert when <= static[gate.name] + 1e-6


class TestErrorRate:
    def test_non_edl_never_toggles_in_window(self, small_prepared):
        """The flows' legality guarantee, checked dynamically."""
        scheme, circuit = small_prepared
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        report = estimate_error_rate(
            circuit, result.placement, edl, cycles=48, seed=5
        )
        assert report.non_edl_violations == 0

    def test_rate_bounds(self, small_prepared):
        scheme, circuit = small_prepared
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        report = estimate_error_rate(
            circuit, result.placement, edl, cycles=32, seed=5
        )
        assert 0.0 <= report.error_rate <= 100.0
        assert report.error_cycles <= report.cycles

    def test_no_edl_no_errors(self, small_prepared):
        """With every endpoint marked non-EDL, errors cannot be
        attributed (and there must be no window toggles if the design
        is clean)."""
        scheme, circuit = small_prepared
        result = base_retime(circuit, overhead=1.0)
        report = estimate_error_rate(
            circuit, result.placement, set(), cycles=24, seed=5
        )
        assert report.error_cycles == 0

    def test_deterministic(self, small_prepared):
        scheme, circuit = small_prepared
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        a = estimate_error_rate(
            circuit, result.placement, edl, cycles=32, seed=9
        )
        b = estimate_error_rate(
            circuit, result.placement, edl, cycles=32, seed=9
        )
        assert a.error_rate == b.error_rate
        assert a.per_endpoint == b.per_endpoint


class TestVcd:
    def test_header_and_dumpvars(self):
        from repro.sim import vcd_text

        waves = {
            "a": Waveform(initial=0, events=[(0.1, 1)]),
            "b": Waveform(initial=1, events=[]),
        }
        text = vcd_text(waves)
        assert "$timescale 1fs $end" in text
        assert "$var wire 1" in text
        assert "$dumpvars" in text
        # a's transition at 0.1 ns = 100000 fs.
        assert "#100000" in text

    def test_selected_signals(self):
        from repro.sim import vcd_text

        waves = {
            "a": Waveform(initial=0),
            "b": Waveform(initial=1),
        }
        text = vcd_text(waves, signals=["b"])
        assert " b " in text and " a " not in text

    def test_missing_signal(self):
        from repro.sim import vcd_text

        with pytest.raises(KeyError):
            vcd_text({}, signals=["ghost"])

    def test_cycle_dump_from_simulator(self, small_prepared):
        from repro.latches import SlavePlacement
        from repro.sim import TimedSimulator, vcd_text

        _, circuit = small_prepared
        simulator = TimedSimulator(circuit)
        launch = {g.name: 1 for g in circuit.netlist.sources()}
        waves = simulator.run_cycle(
            launch, SlavePlacement.initial(), {}
        )
        endpoints = [
            f"{g.name}::d" if g.is_flop else g.name
            for g in circuit.netlist.endpoints()
        ][:4]
        text = vcd_text(waves, signals=endpoints)
        assert text.count("$var wire 1") == 4
