"""The invariant-checkpoint layer (`repro.guard`)."""

import math

import pytest

from repro.errors import InvariantError, NetlistError, ReproError
from repro.flows import run_flow
from repro.guard import Guard, GuardPolicy


class TestGuardPolicy:
    def test_coerce_accepts_strings_and_none(self):
        assert GuardPolicy.coerce(None) is GuardPolicy.OFF
        assert GuardPolicy.coerce("warn") is GuardPolicy.WARN
        assert GuardPolicy.coerce("STRICT") is GuardPolicy.STRICT
        assert GuardPolicy.coerce(GuardPolicy.WARN) is GuardPolicy.WARN

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="guard policy"):
            GuardPolicy.coerce("paranoid")


class TestGuardCheckpoints:
    def test_off_guard_is_a_noop(self, small_netlist, library):
        guard = Guard("off")
        assert guard.netlist_valid(small_netlist, library, "prepare") is None
        assert guard.records == []

    def test_valid_netlist_passes(self, small_netlist, library):
        guard = Guard("strict")
        record = guard.netlist_valid(small_netlist, library, "prepare")
        assert record.ok and record.problems == []

    def test_corrupt_netlist_fails_strict(self, small_netlist, library):
        import random

        from repro.faults import corrupt_net

        broken = small_netlist.copy()
        corrupt_net(broken, random.Random(1))
        guard = Guard("strict", circuit_name=broken.name)
        with pytest.raises(InvariantError) as info:
            guard.netlist_valid(broken, library, "prepare")
        assert info.value.stage == "prepare"
        assert info.value.circuit == broken.name
        assert "missing driver" in str(info.value)

    def test_corrupt_netlist_recorded_warn(self, small_netlist, library):
        import random

        from repro.faults import corrupt_net

        broken = small_netlist.copy()
        corrupt_net(broken, random.Random(1))
        guard = Guard("warn")
        record = guard.netlist_valid(broken, library, "prepare")
        assert not record.ok
        assert guard.violations == [record]
        assert record.to_dict()["problems"]

    def test_timing_sane_flags_nan(self, small_netlist, library):
        from repro.clocks import scheme_from_period
        from repro.faults import sabotaged_circuit

        circuit = sabotaged_circuit(
            small_netlist.copy(), scheme_from_period(10.0), library,
            mode="nan", rate=1.0,
        )
        guard = Guard("warn")
        record = guard.timing_sane(circuit, "prepare")
        # NaN candidates are swallowed by max() in the forward DP, so
        # the symptom may surface as -inf rather than NaN — either way
        # the checkpoint must flag it.
        assert not record.ok
        assert any("NaN" in p or "infinite" in p for p in record.problems)

    def test_area_accounting_rejects_growth(self):
        from repro.latches.resilient import SequentialCost

        cost = SequentialCost(
            n_slaves=4, n_masters=2, n_edl=1, overhead=1.0, latch_area=2.0
        )
        guard = Guard("strict")
        with pytest.raises(InvariantError, match="recovery increased"):
            guard.area_accounting(cost, 10.0, "finalize", recovery_delta=1.0)
        # Shrinking is the job description.
        record = Guard("strict").area_accounting(
            cost, 10.0, "finalize", recovery_delta=-3.0
        )
        assert record.ok

    def test_area_accounting_rejects_nan(self):
        from repro.latches.resilient import SequentialCost

        cost = SequentialCost(
            n_slaves=1, n_masters=1, n_edl=0, overhead=1.0,
            latch_area=math.nan,
        )
        guard = Guard("warn")
        record = guard.area_accounting(cost, 10.0, "finalize")
        assert not record.ok


class TestGuardInFlow:
    def test_clean_flow_passes_strict(self, small_netlist, library):
        outcome = run_flow(
            "grar", small_netlist, library, 1.0, guard="strict"
        )
        assert outcome.guard_records
        assert all(r.ok for r in outcome.guard_records)
        checkpoints = {r.checkpoint for r in outcome.guard_records}
        assert {"netlist_valid", "timing_sane", "cut_legality",
                "area_accounting"} <= checkpoints
        assert outcome.solver_backend == "simplex"

    def test_guard_off_records_nothing(self, small_netlist, library):
        outcome = run_flow("base", small_netlist, library, 1.0)
        assert outcome.guard_records == []

    def test_every_stage_error_is_a_repro_error(self, library):
        """Whatever breaks inside a stage surfaces typed."""
        from repro.netlist.netlist import Netlist

        with pytest.raises(ReproError) as info:
            run_flow("base", Netlist("empty"), library, 1.0)
        assert info.value.stage is not None

    def test_shared_guard_accumulates(self, small_netlist, library):
        guard = Guard("warn")
        run_flow("base", small_netlist, library, 1.0, guard=guard)
        first = len(guard.records)
        run_flow("grar", small_netlist, library, 1.0, guard=guard)
        assert len(guard.records) > first
