"""Tests for the experiment harness and table rendering."""

import pytest

from repro.harness import ExperimentSuite, PAPER_TABLE1, TableResult, render_table
from repro.harness.paper import OVERHEAD_LEVELS, PAPER_AVERAGES


class TestTableResult:
    def test_render_alignment(self):
        table = TableResult("T", "demo", ["name", "value"])
        table.add_row("alpha", 1.234567)
        table.add_row("b", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T: demo"
        assert "alpha" in text and "1.23" in text

    def test_column_and_row_access(self):
        table = TableResult("T", "demo", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("value") == [1, 2]
        assert table.row_for("b") == ["b", 2]
        with pytest.raises(KeyError):
            table.row_for("c")
        with pytest.raises(ValueError):
            table.column("nope")

    def test_notes_rendered(self):
        table = TableResult("T", "demo", ["x"])
        table.add_row(1)
        table.add_note("hello")
        assert "note: hello" in table.render()


class TestPaperRegistry:
    def test_table1_covers_suite(self):
        from repro.circuits import suite_names

        assert set(PAPER_TABLE1) == set(suite_names())

    def test_overhead_levels(self):
        assert OVERHEAD_LEVELS == {"low": 0.5, "medium": 1.0, "high": 2.0}

    def test_headline_averages_recorded(self):
        assert PAPER_AVERAGES["table5_grar_total"]["high"] == pytest.approx(
            14.73
        )
        assert PAPER_AVERAGES["table4_grar_seq"]["high"] == pytest.approx(
            29.62
        )


@pytest.fixture(scope="module")
def mini_suite():
    return ExperimentSuite(circuits=["s1196"], error_rate_cycles=32)


class TestExperimentSuite:
    def test_outcomes_memoized(self, mini_suite):
        a = mini_suite.outcome("s1196", "base", 1.0)
        b = mini_suite.outcome("s1196", "base", 1.0)
        assert a is b

    def test_table1_shape(self, mini_suite):
        table = mini_suite.table1()
        assert table.headers[0] == "circuit"
        assert len(table.rows) == 1
        assert table.rows[0][0] == "s1196"
        assert table.rows[0][2] == 32  # flop count

    def test_table5_has_improvement_columns(self, mini_suite):
        table = mini_suite.table5()
        assert "low:grar%" in table.headers
        assert len(table.rows) == 1
        assert table.notes

    def test_table6_three_approaches_per_circuit(self, mini_suite):
        table = mini_suite.table6()
        assert [row[1] for row in table.rows] == ["Base", "RVL", "G"]

    def test_table8_error_rates_bounded(self, mini_suite):
        table = mini_suite.table8()
        for row in table.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 100.0

    def test_error_rate_memoized(self, mini_suite):
        first = mini_suite.error_rate("s1196", "base", 1.0)
        second = mini_suite.error_rate("s1196", "base", 1.0)
        assert first == second


class TestRemainingTables:
    def test_table2_structure(self, mini_suite):
        table = mini_suite.table2()
        assert "high:gate" in table.headers
        row = table.row_for("s1196")
        # gate and path columns are positive areas.
        assert all(v > 0 for v in row[1:] if not isinstance(v, str))

    def test_table3_structure(self, mini_suite):
        table = mini_suite.table3()
        assert "medium:EVL" in table.headers
        assert len(table.rows) == 1

    def test_table7_runtimes_positive(self, mini_suite):
        table = mini_suite.table7()
        for value in table.rows[0][1:]:
            assert value >= 0.0

    def test_table9_structure(self, mini_suite):
        table = mini_suite.table9()
        assert "low:diff%" in table.headers

    def test_flop_comparison_savings_defined(self, mini_suite):
        table = mini_suite.flop_comparison()
        assert "high:saving%" in table.headers
        # Flop-resilient estimate grows with overhead.
        headers = table.headers
        row = table.rows[0]
        low = row[headers.index("low:flop_res")]
        high = row[headers.index("high:flop_res")]
        assert high >= low


class TestCsvExport:
    def test_to_csv(self):
        table = TableResult("T", "demo", ["name", "value"])
        table.add_row("a", 1.5)
        csv_text = table.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"


class TestCIndependence:
    """c-independent methods derive non-canonical overheads by
    re-costing; the derivation must equal a real run."""

    def test_derived_equals_real_run(self, library):
        from repro.circuits import build_benchmark
        from repro.flows import run_flow

        suite = ExperimentSuite(circuits=["s1488"])
        derived = suite.outcome("s1488", "base", 2.0)
        real = run_flow(
            "base",
            suite.netlist("s1488"),
            library,
            2.0,
            scheme=suite.scheme("s1488"),
        )
        assert derived.n_slaves == real.n_slaves
        assert derived.n_edl == real.n_edl
        assert derived.edl_endpoints == real.edl_endpoints
        assert derived.sequential_area == pytest.approx(
            real.sequential_area
        )
        assert derived.total_area == pytest.approx(real.total_area)

    def test_grar_not_derived(self):
        suite = ExperimentSuite(circuits=["s1488"])
        low = suite.outcome("s1488", "grar", 0.5)
        high = suite.outcome("s1488", "grar", 2.0)
        assert low is not high
        assert low.overhead == 0.5 and high.overhead == 2.0
