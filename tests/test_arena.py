"""The flat-array arena: bit-parity with the object engines.

The arena's whole value proposition is that ``--sta-engine arena`` is
*bit-identical* to the object reference — same floats, same error
messages, same incremental-repair behaviour — so every test here
compares the two implementations directly rather than asserting
absolute numbers.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cells import default_library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.circuits.suite import (
    BENCHMARK_PROFILES,
    build_benchmark,
    scaled_profile,
)
from repro.core import (
    STA_ENGINES,
    ArenaMinDelayAnalysis,
    ArenaTimingEngine,
    clear_arena_cache,
    compile_arena,
    make_timing_engine,
)
from repro import metrics
from repro.errors import SimulationError, TimingError
from repro.flows import prepare_circuit, run_flow
from repro.latches import SlavePlacement, TwoPhaseCircuit
from repro.scenarios.injectors import (
    InjectionPlan,
    latch_state_keys,
)
from repro.netlist import NetlistBuilder
from repro.sim import estimate_error_rate, estimate_error_rate_batched
from repro.sta.engine import TimingEngine
from repro.sta.min_delay import MinDelayAnalysis

LIBRARY = default_library()


def make_netlist(seed, flops=8, gates=90, depth=6, fraction=0.3):
    spec = CloudSpec(
        name=f"arena{seed}",
        seed=seed,
        n_inputs=4,
        n_outputs=3,
        n_flops=flops,
        n_gates=gates,
        depth=depth,
        critical_fraction=fraction,
    )
    return generate_circuit(spec, LIBRARY)


def engine_pair(netlist, model="path", **kwargs):
    """(object, arena) engines over private copies of ``netlist``."""
    obj_nl = netlist.copy()
    arena_nl = netlist.copy()
    obj = TimingEngine(obj_nl, LIBRARY, model=model, **kwargs)
    arena = ArenaTimingEngine(arena_nl, LIBRARY, model=model, **kwargs)
    return obj, arena


def assert_engines_identical(obj, arena):
    """Every forward / backward query is bit-identical."""
    names = [g.name for g in obj.netlist.gates.values()]
    for name in names:
        gate = obj.netlist[name]
        if gate.gtype.name != "OUTPUT":
            a = obj.forward_arrival(name)
            b = arena.forward_arrival(name)
            assert a == b or (math.isnan(a) and math.isnan(b)), name
        a = obj.max_backward(name)
        b = arena.max_backward(name)
        assert a == b or (math.isnan(a) and math.isnan(b)), name
    assert obj.worst_arrival() == arena.worst_arrival()
    assert obj.endpoint_arrivals() == arena.endpoint_arrivals()


class TestForwardBackwardParity:
    @pytest.mark.parametrize("model", ["path", "gate"])
    @pytest.mark.parametrize("bench", ["s1196", "s1488"])
    def test_suite_circuit_parity(self, bench, model):
        netlist = build_benchmark(bench, LIBRARY)
        obj, arena = engine_pair(netlist, model=model)
        assert_engines_identical(obj, arena)

    def test_source_offsets_parity(self):
        netlist = make_netlist(11)
        offsets = {
            g.name: 0.01 * i
            for i, g in enumerate(netlist.sources())
        }
        obj, arena = engine_pair(netlist, source_offsets=offsets)
        assert_engines_identical(obj, arena)

    @pytest.mark.parametrize("model", ["path", "gate"])
    def test_mutation_parity(self, model):
        """Cell swaps take the arena's patch path; still bit-identical."""
        netlist = make_netlist(23)
        obj, arena = engine_pair(netlist, model=model)
        rng = random.Random(7)
        comb = [g.name for g in netlist.comb_gates()]
        for _ in range(12):
            name = rng.choice(comb)
            variants = LIBRARY.drive_variants(
                LIBRARY[obj.netlist[name].cell]
            )
            swap = rng.choice(variants).name
            obj.netlist.replace_cell(name, swap)
            arena.netlist.replace_cell(name, swap)
            assert_engines_identical(obj, arena)

    def test_min_delay_parity(self):
        netlist = make_netlist(31)
        obj = MinDelayAnalysis(netlist.copy(), LIBRARY)
        arena = ArenaMinDelayAnalysis(netlist.copy(), LIBRARY)
        for gate in netlist.gates.values():
            if gate.gtype.name == "OUTPUT":
                continue
            assert obj.min_arrival(gate.name) == arena.min_arrival(
                gate.name
            ), gate.name

    def test_error_message_parity(self):
        """A comb gate reading a PO errors identically in both engines."""
        builder = NetlistBuilder("badread", LIBRARY)
        a = builder.input("a")
        b = builder.input("b")
        g1 = builder.gate("g1", "AND", [a, b])
        po = builder.output("po", g1)
        g2 = builder.gate("g2", "AND", [a, b])
        builder.output("po2", g2)
        netlist = builder.build()
        # g2 now reads the PO marker — illegal, and not a cycle.
        netlist.rewire_fanin(g2, b, po)
        obj, arena = engine_pair(netlist)
        with pytest.raises(TimingError) as obj_err:
            obj.worst_arrival()
        with pytest.raises(TimingError) as arena_err:
            arena.worst_arrival()
        assert str(obj_err.value) == str(arena_err.value)


class TestEngineThreading:
    def test_make_timing_engine_dispatch(self):
        netlist = make_netlist(5)
        assert type(make_timing_engine("object", netlist, LIBRARY)) is (
            TimingEngine
        )
        assert isinstance(
            make_timing_engine("arena", netlist, LIBRARY),
            ArenaTimingEngine,
        )
        with pytest.raises(ValueError, match="unknown sta engine"):
            make_timing_engine("simd", netlist, LIBRARY)

    def test_circuit_rejects_unknown_engine(self):
        netlist = make_netlist(5)
        _, circuit = prepare_circuit(netlist, LIBRARY)
        with pytest.raises(ValueError, match="unknown sta_engine"):
            TwoPhaseCircuit(
                netlist, circuit.scheme, LIBRARY, sta_engine="fast"
            )
        assert "arena" in STA_ENGINES

    def test_run_flow_engine_parity(self):
        netlist = build_benchmark("s1196", LIBRARY)
        obj = run_flow("base", netlist, LIBRARY, 0.5, sta_engine="object")
        arena = run_flow("base", netlist, LIBRARY, 0.5, sta_engine="arena")
        assert obj.cost.latch_units == arena.cost.latch_units
        assert obj.n_slaves == arena.n_slaves
        assert obj.n_edl == arena.n_edl
        assert obj.total_area == arena.total_area


class TestArenaCache:
    def test_compile_cache_hits(self, library):
        clear_arena_cache()
        netlist = make_netlist(53)
        engine = ArenaTimingEngine(netlist, LIBRARY)
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            engine.worst_arrival()
            engine.invalidate()
            engine.worst_arrival()
        assert collector.counters.get("arena.compile.misses", 0) == 1
        assert collector.counters.get("arena.compile.hits", 0) == 1

    def test_patch_does_not_mutate_cached_arena(self):
        clear_arena_cache()
        netlist = make_netlist(59)
        engine = ArenaTimingEngine(netlist, LIBRARY)
        before = engine.worst_arrival()
        pristine = compile_arena(engine.netlist, engine.calculator)
        delays = pristine.t_delay.copy() if pristine.rf else (
            pristine.f_delay.copy()
        )
        comb = next(g for g in netlist.comb_gates())
        variants = LIBRARY.drive_variants(LIBRARY[comb.cell])
        swap = next(v.name for v in variants if v.name != comb.cell)
        netlist.replace_cell(comb.name, swap)
        engine.worst_arrival()
        if pristine.rf:
            assert (pristine.t_delay == delays).all()
        else:
            assert (pristine.f_delay == delays).all()
        netlist.replace_cell(comb.name, comb.cell)
        assert engine.worst_arrival() == before


class TestScaledBenchmarks:
    def test_scaled_profile_counts(self):
        base = BENCHMARK_PROFILES["s1196"]
        scaled = scaled_profile(base, 10)
        assert scaled.name == "s1196x10"
        assert scaled.n_gates == base.n_gates * 10
        assert scaled.n_flops == base.n_flops * 10
        assert scaled.depth == base.depth

    def test_scaled_build_is_deterministic(self):
        a = build_benchmark("s1196x2", LIBRARY)
        b = build_benchmark("s1196x2", LIBRARY)
        assert sorted(a.gates) == sorted(b.gates)
        assert len(a.gates) > len(build_benchmark("s1196", LIBRARY).gates)

    def test_bad_scaled_names(self):
        with pytest.raises(KeyError):
            build_benchmark("nope_x10", LIBRARY)
        with pytest.raises(ValueError, match="out of range"):
            build_benchmark("s1196x1", LIBRARY)
        with pytest.raises(ValueError, match="out of range"):
            build_benchmark("s1196x101", LIBRARY)


def small_circuit():
    netlist = build_benchmark("s1196", LIBRARY)
    _, circuit = prepare_circuit(netlist, LIBRARY)
    placement = SlavePlacement.initial()
    edl = {g.name for g in circuit.netlist.endpoints()}
    return circuit, placement, edl


class TestBatchedSimulation:
    def test_batched_matches_sequential(self):
        circuit, placement, edl = small_circuit()
        seeds = [3, 14, 2017]
        sequential = [
            estimate_error_rate(
                circuit, placement, edl, cycles=24, seed=s
            )
            for s in seeds
        ]
        batched = estimate_error_rate_batched(
            circuit, placement, edl, cycles=24, seeds=seeds
        )
        assert batched == sequential

    def test_batched_event_backend(self):
        circuit, placement, edl = small_circuit()
        seeds = [1, 2]
        sequential = [
            estimate_error_rate(
                circuit, placement, edl, cycles=8, seed=s, backend="event"
            )
            for s in seeds
        ]
        batched = estimate_error_rate_batched(
            circuit, placement, edl, cycles=8, seeds=seeds, backend="event"
        )
        assert batched == sequential

    def test_batched_with_injection(self):
        circuit, placement, edl = small_circuit()
        flop = next(g.name for g in circuit.netlist.flops())
        comb = next(g.name for g in circuit.netlist.comb_gates())
        plan = InjectionPlan(
            label="corner",
            delay_scale={comb: 1.2},
            seu_flips={3: (flop,), 9: (flop,)},
        )
        seeds = [5, 6]
        sequential = [
            estimate_error_rate(
                circuit, placement, edl, cycles=16, seed=s, injection=plan
            )
            for s in seeds
        ]
        batched = estimate_error_rate_batched(
            circuit, placement, edl, cycles=16, seeds=seeds, injection=plan
        )
        assert batched == sequential

    def test_batched_metrics(self):
        circuit, placement, edl = small_circuit()
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            estimate_error_rate_batched(
                circuit, placement, edl, cycles=4, seeds=[1, 2, 3]
            )
        assert collector.counters["sim.batched.runs"] == 1
        assert collector.counters["sim.batched.lanes"] == 3
        assert collector.counters["sim.cycles"] == 12
        assert collector.values["sim.wall_s"].count == 1


class TestLatchTargetValidation:
    """The ``latch:`` SEU-target validation (regression).

    Before the fix, any target starting with ``latch:`` was accepted
    unchecked, so a typo'd key silently mutated phantom state — these
    tests fail if the ``target not in latch_keys`` check is reverted
    to the old ``startswith("latch:")`` bypass.
    """

    def test_bogus_latch_key_rejected(self):
        circuit, placement, edl = small_circuit()
        plan = InjectionPlan(
            label="typo",
            seu_flips={0: ("latch:no_such_driver:no_such_sink",)},
        )
        with pytest.raises(SimulationError) as err:
            estimate_error_rate(
                circuit, placement, edl, cycles=2, injection=plan
            )
        assert "unknown targets" in str(err.value)
        payload = err.value.payload
        assert payload["unknown_targets"] == [
            "latch:no_such_driver:no_such_sink"
        ]

    def test_real_latch_keys_accepted(self):
        circuit, placement, edl = small_circuit()
        keys = latch_state_keys(circuit.netlist, placement)
        assert keys, "expected at least one latch edge"
        plan = InjectionPlan(label="real", seu_flips={0: (keys[0],)})
        report = estimate_error_rate(
            circuit, placement, edl, cycles=2, injection=plan
        )
        assert report.cycles == 2

    def test_batched_validates_too(self):
        circuit, placement, edl = small_circuit()
        plan = InjectionPlan(
            label="typo", seu_flips={0: ("latch:bogus:key",)}
        )
        with pytest.raises(SimulationError):
            estimate_error_rate_batched(
                circuit, placement, edl, cycles=2, seeds=[1], injection=plan
            )


SEEDS = st.integers(min_value=1, max_value=10**6)
SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestArenaProperties:
    """Hypothesis sweep: parity across random circuits and mutations."""

    @given(SEEDS, st.sampled_from(["path", "gate"]))
    @SLOW
    def test_random_circuit_parity(self, seed, model):
        netlist = make_netlist(seed, flops=6, gates=70, depth=5)
        obj, arena = engine_pair(netlist, model=model)
        assert_engines_identical(obj, arena)
        obj_min = MinDelayAnalysis(obj.netlist, LIBRARY)
        arena_min = ArenaMinDelayAnalysis(arena.netlist, LIBRARY)
        for gate in netlist.gates.values():
            if gate.gtype.name == "OUTPUT":
                continue
            assert obj_min.min_arrival(gate.name) == (
                arena_min.min_arrival(gate.name)
            )

    @given(SEEDS, st.integers(min_value=0, max_value=10**6))
    @SLOW
    def test_random_mutations_parity(self, seed, mut_seed):
        netlist = make_netlist(seed, flops=6, gates=70, depth=5)
        obj, arena = engine_pair(netlist)
        rng = random.Random(mut_seed)
        comb = [g.name for g in netlist.comb_gates()]
        for _ in range(5):
            name = rng.choice(comb)
            variants = LIBRARY.drive_variants(
                LIBRARY[obj.netlist[name].cell]
            )
            swap = rng.choice(variants).name
            obj.netlist.replace_cell(name, swap)
            arena.netlist.replace_cell(name, swap)
        assert_engines_identical(obj, arena)

    @given(SEEDS, st.floats(min_value=0.8, max_value=1.5))
    @SLOW
    def test_batched_reports_bit_identical(self, seed, scale):
        netlist = make_netlist(seed, flops=6, gates=70, depth=5)
        _, circuit = prepare_circuit(netlist, LIBRARY)
        placement = SlavePlacement.initial()
        edl = {g.name for g in circuit.netlist.endpoints()}
        comb = next(g.name for g in circuit.netlist.comb_gates())
        plan = InjectionPlan(
            label=f"corner{seed}", delay_scale={comb: scale}
        )
        seeds = [seed % 97, seed % 89 + 1]
        sequential = [
            estimate_error_rate(
                circuit, placement, edl, cycles=6, seed=s, injection=plan
            )
            for s in seeds
        ]
        batched = estimate_error_rate_batched(
            circuit, placement, edl, cycles=6, seeds=seeds, injection=plan
        )
        assert batched == sequential
