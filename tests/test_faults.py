"""Fault-injection property tests.

Acceptance criterion for the robustness layer: every fault class in
:data:`repro.faults.FAULT_KINDS` must surface as a *typed*
:class:`ReproError` (strict) or a *recorded* partial result (warn +
isolate) — never an unhandled crash, never a silently wrong table.
"""

import io
import json
import random
from fractions import Fraction

import pytest

from repro.circuits.generator import CloudSpec, generate_circuit
from repro.clocks import scheme_from_period
from repro.errors import (
    InfeasibleFlowError,
    NetlistError,
    ReproError,
    SolverTimeoutError,
    TimingError,
)
from repro.faults import (
    FAULT_KINDS,
    SabotagedCalculator,
    chaotic_simplex,
    corrupt_net,
    delay_corner_plan,
    glitch_pulse_plan,
    infeasible_scheme,
    sabotaged_circuit,
    seu_capture_plan,
    truncate_bench,
    unbalanced_demands,
)
from repro.flows import run_flow
from repro.guard import Guard
from repro.harness import ExperimentSuite
from repro.latches.resilient import TwoPhaseCircuit
from repro.netlist import parse_bench
from repro.netlist.bench import write_bench


def _prepared(netlist, library):
    from repro.flows import prepare_circuit

    scheme, circuit = prepare_circuit(netlist, library)
    return scheme, circuit


class TestCorruptNet:
    def test_strict_flow_raises_typed(self, small_netlist, library):
        broken = small_netlist.copy()
        report = corrupt_net(broken, random.Random(3))
        assert report.kind == "corrupt-net"
        with pytest.raises(ReproError) as info:
            run_flow("grar", broken, library, 1.0, guard="strict")
        assert info.value.stage is not None

    def test_unguarded_flow_still_typed(self, small_netlist, library):
        """Even with the guard off, the stage scopes keep it typed."""
        broken = small_netlist.copy()
        corrupt_net(broken, random.Random(3))
        with pytest.raises(ReproError):
            run_flow("base", broken, library, 1.0)


BENCH = """\
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOT(g1)
d1 = DFF(g2)
g3 = AND(d1, g1)
y = OR(g3, g2)
"""


class TestTruncatedBench:
    def test_parse_raises_netlist_error(self, library):
        text, report = truncate_bench(BENCH, random.Random(5))
        assert report.kind == "truncated-bench"
        with pytest.raises(NetlistError):
            parse_bench(text, library, name="truncated")

    def test_roundtrip_still_works_untruncated(self, library):
        netlist = parse_bench(BENCH, library, name="ok")
        buffer = io.StringIO()
        write_bench(netlist, buffer)
        again = parse_bench(buffer.getvalue(), library, name="ok2")
        assert len(list(again.comb_gates())) == len(
            list(netlist.comb_gates())
        )


class TestSabotagedTiming:
    @pytest.mark.parametrize("mode", ["nan", "negative", "inf"])
    def test_guard_catches_lying_calculator(
        self, mode, small_netlist, library
    ):
        circuit = sabotaged_circuit(
            small_netlist.copy(),
            scheme_from_period(10.0),
            library,
            mode=mode,
            rate=1.0,
        )
        warn = Guard("warn").timing_sane(circuit, "prepare")
        assert not warn.ok and warn.problems
        from repro.errors import InvariantError

        with pytest.raises(InvariantError):
            Guard("strict").timing_sane(circuit, "prepare")

    def test_honest_edges_unchanged(self, small_netlist, library):
        """rate=0 must be an exact no-op (sabotage is opt-in per edge)."""
        sab = SabotagedCalculator(
            small_netlist, library, mode="nan", rate=0.0
        )
        honest = type(sab).__mro__[1](small_netlist, library)
        gate = next(g for g in small_netlist.comb_gates() if g.fanins)
        driver = gate.fanins[0]
        assert sab.edge_delay(driver, gate.name) == honest.edge_delay(
            driver, gate.name
        )
        assert sab.hits == []


class TestInfeasibleCut:
    def test_squeezed_clock_raises_timing_error(
        self, small_netlist, library
    ):
        scheme, _ = _prepared(small_netlist.copy(), library)
        tight = infeasible_scheme(scheme)
        with pytest.raises(TimingError):
            run_flow(
                "grar", small_netlist.copy(), library, 1.0, scheme=tight
            )

    def test_error_carries_stage_context(self, small_netlist, library):
        scheme, _ = _prepared(small_netlist.copy(), library)
        tight = infeasible_scheme(scheme)
        with pytest.raises(ReproError) as info:
            run_flow(
                "grar", small_netlist.copy(), library, 1.0, scheme=tight
            )
        assert info.value.stage in ("prepare", "retime")


class TestSolverFaults:
    def test_unbalanced_demands_infeasible(self):
        from repro.retime.mincostflow import solve_min_cost_flow

        rng = random.Random(11)
        nodes = [f"n{i}" for i in range(6)]
        arcs = [
            (nodes[i], nodes[(i + 1) % 6], 1) for i in range(6)
        ] + [(nodes[(i + 1) % 6], nodes[i], 1) for i in range(6)]
        demands = unbalanced_demands(nodes, rng)
        assert sum(demands.values()) != 0
        with pytest.raises(InfeasibleFlowError):
            solve_min_cost_flow(nodes, arcs, demands)

    def test_pivot_chaos_hits_iteration_budget(self):
        from tests.test_solver_parity import random_instance

        nodes, arcs, demands = random_instance(2, n_nodes=10, n_extra=20)
        solver = chaotic_simplex(
            nodes, arcs, demands, seed=7, max_iterations=2
        )
        with pytest.raises(SolverTimeoutError):
            solver.solve()

    def test_pivot_chaos_still_reaches_optimum(self):
        """Anti-cycling keeps even randomized pivoting convergent."""
        from repro.retime.mincostflow import SolverPolicy, solve_min_cost_flow
        from tests.test_solver_parity import random_instance

        nodes, arcs, demands = random_instance(4, n_nodes=8, n_extra=16)
        reference = solve_min_cost_flow(
            nodes, arcs, demands, SolverPolicy(backends=("networkx",))
        ).objective
        for seed in range(3):
            solver = chaotic_simplex(nodes, arcs, demands, seed=seed)
            result = solver.solve()
            assert result.objective == reference


# -- suite-level isolation (the acceptance test) ---------------------------


def _tiny_suite(library, guard="strict", isolate=True, memo_path=None):
    names = ["alpha", "bravo", "charlie"]
    suite = ExperimentSuite(
        circuits=names,
        library=library,
        error_rate_cycles=16,
        guard=guard,
        isolate=isolate,
        memo_path=memo_path,
    )
    for index, name in enumerate(names):
        spec = CloudSpec(
            name=name,
            seed=40 + index,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=40,
            depth=5,
            critical_fraction=0.3,
        )
        suite._netlists[name] = generate_circuit(spec, library)
    return suite


class TestSuiteIsolation:
    def test_partial_tables_with_one_sabotaged_circuit(self, library):
        suite = _tiny_suite(library)
        corrupt_net(suite._netlists["bravo"], random.Random(0))

        table = suite.table5()
        rows = {row[0]: row for row in table.rows}
        assert set(rows) == {"alpha", "bravo", "charlie"}
        # Sabotaged circuit: every metric cell is NaN -> renders FAILED.
        assert all(v != v for v in rows["bravo"][1:])
        assert "FAILED" in table.render()
        # Clean circuits keep real numbers.
        for name in ("alpha", "charlie"):
            assert all(v == v for v in rows[name][1:])

        report = suite.failure_report()
        assert report["n_failures"] >= 1
        assert {f["circuit"] for f in suite_failures(report)} == {"bravo"}
        json.dumps(report)  # machine-readable

    def test_without_isolation_the_fault_propagates(self, library):
        suite = _tiny_suite(library, isolate=False)
        corrupt_net(suite._netlists["bravo"], random.Random(0))
        with pytest.raises(ReproError):
            suite.table5()

    def test_averages_skip_failed_cells(self, library):
        suite = _tiny_suite(library)
        corrupt_net(suite._netlists["bravo"], random.Random(0))
        table = suite.table5()
        for note in table.notes:
            assert "nan" not in note.lower()

    def test_memo_checkpoint_resumes(self, library, tmp_path):
        memo = str(tmp_path / "memo.json")
        first = _tiny_suite(library, memo_path=memo)
        area = first.outcome("alpha", "grar", 1.0).total_area

        resumed = _tiny_suite(library, memo_path=memo)
        record = resumed.outcome("alpha", "grar", 1.0)
        assert record.total_area == pytest.approx(area)
        # Resumed from disk, not re-run: the memo hands back a record.
        from repro.harness.experiments import FlowRecord

        assert isinstance(record, FlowRecord)


class TestSimulationLevelFaults:
    """The scenario-engine injectors, exposed as fault kinds: each
    builder yields a deterministic plan both sim backends honour."""

    def test_seu_capture_plan(self, small_netlist):
        plan, report = seu_capture_plan(
            small_netlist, cycles=64, rng=random.Random(3), rate=0.5
        )
        assert report.kind == "seu-capture"
        assert report.detail["n_flips"] == sum(
            len(v) for v in plan.seu_flips.values()
        )
        assert report.detail["n_flips"] > 0
        flops = {g.name for g in small_netlist.flops()}
        for targets in plan.seu_flips.values():
            assert set(targets) <= flops

    def test_seu_capture_plan_with_placement_reaches_latches(
        self, small_netlist, library
    ):
        from repro.retime import base_retime

        _, circuit = _prepared(small_netlist, library)
        result = base_retime(circuit, overhead=1.0)
        plan, _ = seu_capture_plan(
            small_netlist, cycles=512, rng=random.Random(3),
            placement=result.placement, rate=0.9,
        )
        targets = {t for v in plan.seu_flips.values() for t in v}
        assert any(t.startswith("latch:") for t in targets)

    def test_glitch_pulse_plan(self, small_netlist, library):
        scheme, _ = _prepared(small_netlist, library)
        plan, report = glitch_pulse_plan(
            small_netlist, scheme, cycles=64,
            rng=random.Random(5), rate=0.5,
        )
        assert report.kind == "glitch-pulse"
        assert report.detail["n_glitches"] > 0
        nets = {g.name for g in small_netlist.comb_gates()}
        for specs in plan.glitches.values():
            for spec in specs:
                assert spec.net in nets
                assert 0.0 <= spec.start <= scheme.period
                assert spec.width == report.detail["width"]

    def test_delay_corner_plan(self, small_netlist):
        plan, report = delay_corner_plan(
            small_netlist, random.Random(7), systematic=1.2, sigma=0.1
        )
        assert report.kind == "delay-corner"
        assert report.detail["n_gates"] == len(plan.delay_scale)
        assert set(plan.delay_scale) == {
            g.name for g in small_netlist.comb_gates()
        }
        assert min(plan.delay_scale.values()) > 0

    def test_plans_are_seed_deterministic(self, small_netlist, library):
        scheme, _ = _prepared(small_netlist, library)
        for build in (
            lambda r: seu_capture_plan(small_netlist, 32, r)[0],
            lambda r: glitch_pulse_plan(small_netlist, scheme, 32, r)[0],
            lambda r: delay_corner_plan(small_netlist, r)[0],
        ):
            assert build(random.Random(9)) == build(random.Random(9))

    def test_planned_faults_survive_simulation_typed(
        self, small_netlist, library
    ):
        """A planned upset either simulates (degraded output) or
        raises a typed SimulationError — never an unhandled crash."""
        from repro.retime import base_retime
        from repro.sim import estimate_error_rate

        scheme, circuit = _prepared(small_netlist, library)
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        plan, _ = glitch_pulse_plan(
            small_netlist, scheme, cycles=24,
            rng=random.Random(2), rate=0.5,
        )
        report = estimate_error_rate(
            circuit, result.placement, edl, cycles=24, injection=plan
        )
        assert 0.0 <= report.error_rate <= 100.0


def suite_failures(report):
    return report["failures"]


class TestCliErrors:
    def test_negative_overhead_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["run", "s1488", "--overhead", "-1"]) == 2
        assert "overhead" in capsys.readouterr().err

    def test_unknown_circuit_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["run", "does-not-exist"]) == 2
        assert capsys.readouterr().err

    def test_json_errors_emit_machine_readable(self, capsys):
        from repro.cli import main

        code = main(["--json-errors", "run", "s1488", "--overhead", "-1"])
        assert code == 2
        err = capsys.readouterr().err
        payload = json.loads(err)
        assert payload["type"]

    def test_every_fault_kind_has_coverage(self):
        """Keep FAULT_KINDS and this test module in sync."""
        covered = {
            "corrupt-net",
            "truncated-bench",
            "nan-delay",
            "negative-delay",
            "infeasible-cut",
            "unbalanced-demands",
            "pivot-chaos",
            "seu-capture",
            "glitch-pulse",
            "delay-corner",
        }
        assert covered == set(FAULT_KINDS)
