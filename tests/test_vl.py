"""Tests for the virtual-library flow."""

import pytest

from repro.latches import SlavePlacement
from repro.retime import compute_regions
from repro.vl import (
    SwapReport,
    VlVariant,
    apply_required_upgrades,
    initial_types,
    swap_unnecessary_edl,
    vl_retime,
)
from repro.vl.flow import forceable_gates


class TestInitialTypes:
    def test_evl_all_edl(self, fig4):
        types = initial_types(fig4, VlVariant.EVL)
        assert all(types.values())
        assert set(types) == {"O9", "O10"}

    def test_nvl_none_edl(self, fig4):
        types = initial_types(fig4, VlVariant.NVL)
        assert not any(types.values())

    def test_rvl_types_by_initial_arrival(self, fig4):
        """RVL judges criticality on the pre-retiming latch design:
        O9's initial arrival is 14 (> Pi = 10), O10's is 6."""
        types = initial_types(fig4, VlVariant.RVL)
        assert types["O9"] is True
        assert types["O10"] is False

    def test_initial_arrivals_used(self, fig4):
        arrivals = fig4.endpoint_arrivals(SlavePlacement.initial())
        # O9: window opening (5) + D^b(I1, O9) = 9 -> 14.
        assert arrivals["O9"] == pytest.approx(14.0)
        # O10: window opening (5) + D^b(I1, O10) = d(G3)+d(G4) -> 8.
        assert arrivals["O10"] == pytest.approx(8.0)


class TestSwaps:
    def test_upgrade_violating_non_edl(self, fig4):
        placement = SlavePlacement(retimed={"I1", "I2", "G3"})  # Cut1
        report = SwapReport()
        types = {"O9": False, "O10": False}
        updated = apply_required_upgrades(fig4, placement, types, report)
        assert updated["O9"] is True  # arrival 12 > 10
        assert updated["O10"] is False
        assert report.upgraded == ["O9"]

    def test_downgrade_unnecessary_edl(self, fig4):
        placement = SlavePlacement(
            retimed={"I1", "I2", "G3", "G4", "G5", "G6"}
        )  # Cut2
        report = SwapReport()
        types = {"O9": True, "O10": True}
        updated = swap_unnecessary_edl(fig4, placement, types, report)
        assert updated == {"O9": False, "O10": False}
        assert set(report.downgraded) == {"O9", "O10"}

    def test_swap_keeps_window_edl(self, fig4):
        placement = SlavePlacement(retimed={"I1", "I2", "G3"})  # Cut1
        report = SwapReport()
        types = {"O9": True, "O10": True}
        updated = swap_unnecessary_edl(fig4, placement, types, report)
        assert updated["O9"] is True  # still in the window
        assert updated["O10"] is False


class TestForceable:
    def test_fig4_forceable_excludes_vn_cones(self, fig4):
        regions = compute_regions(fig4)
        forceable = forceable_gates(fig4, regions)
        assert {"I1", "I2", "G3", "G4", "G5", "G6"} <= forceable
        assert "G7" not in forceable
        assert "G8" not in forceable


class TestVlRetime:
    def test_rvl_on_fig4(self, fig4):
        result = vl_retime(fig4, overhead=2.0, variant=VlVariant.RVL)
        report = fig4.check_legality(result.placement)
        assert report.ok
        assert result.method == "rvl-rar"

    def test_noswap_method_name(self, fig4):
        result = vl_retime(
            fig4, overhead=1.0, variant=VlVariant.RVL, post_swap=False
        )
        assert result.method.endswith("-noswap")

    def test_evl_types_all_edl_without_swap(self, fig4):
        result = vl_retime(
            fig4, overhead=1.0, variant=VlVariant.EVL, post_swap=False
        )
        assert result.edl_endpoints == {"O9", "O10"}

    def test_nvl_forced_cuts_rescue_o9(self, fig4):
        """NVL types O9 non-EDL; the forced g(O9) cut makes it true."""
        result = vl_retime(fig4, overhead=1.0, variant=VlVariant.NVL)
        assert not fig4.is_edl(result.placement, "O9")
        assert {"G5", "G6"} <= result.placement.retimed

    def test_forced_cuts_off_keeps_min_slaves(self, fig4):
        loose = vl_retime(
            fig4, overhead=1.0, variant=VlVariant.NVL, forced_cuts=False
        )
        forced = vl_retime(
            fig4, overhead=1.0, variant=VlVariant.NVL, forced_cuts=True
        )
        assert loose.n_slaves <= forced.n_slaves

    def test_explicit_types_respected(self, fig4):
        result = vl_retime(
            fig4,
            overhead=1.0,
            variant=VlVariant.RVL,
            types={"O9": True, "O10": True},
            post_swap=False,
        )
        assert result.edl_endpoints == {"O9", "O10"}

    def test_negative_overhead_rejected(self, fig4):
        with pytest.raises(ValueError):
            vl_retime(fig4, overhead=-0.5)

    def test_notes_populated(self, fig4):
        result = vl_retime(fig4, overhead=1.0, variant=VlVariant.NVL)
        assert "forced_gates" in result.notes
        assert int(result.notes["forced_gates"]) >= 2
