"""Tests for the report_timing-style text reports."""

import pytest

from repro.sta import TimingEngine
from repro.sta.report import report_timing, report_worst_paths


@pytest.fixture()
def engine(small_netlist, library):
    return TimingEngine(small_netlist, library)


class TestReportTiming:
    def test_contains_start_and_endpoint(self, engine):
        endpoint = engine.endpoints()[0].name
        report = report_timing(engine, endpoint)
        assert f"Endpoint:   {endpoint}" in report.text
        assert "Startpoint:" in report.text
        assert report.required is None
        assert report.slack is None
        assert report.met

    def test_arrival_line_matches_engine(self, engine):
        endpoint = engine.endpoints()[0].name
        report = report_timing(engine, endpoint)
        assert f"{engine.endpoint_arrival(endpoint):.4f}" in report.text

    def test_slack_met(self, engine):
        endpoint = engine.endpoints()[0].name
        arrival = engine.endpoint_arrival(endpoint)
        report = report_timing(engine, endpoint, required=arrival + 1.0)
        assert report.met
        assert "MET" in report.text
        assert report.slack == pytest.approx(1.0)

    def test_slack_violated(self, engine):
        endpoint = max(
            (g.name for g in engine.endpoints()),
            key=engine.endpoint_arrival,
        )
        report = report_timing(engine, endpoint, required=0.0)
        assert not report.met
        assert "VIOLATED" in report.text

    def test_increments_sum_to_arrival(self, engine):
        """The incr column must accumulate to the reported arrival
        (within the rise/fall refinement tolerance)."""
        endpoint = engine.endpoints()[0].name
        report = report_timing(engine, endpoint)
        path = report.path
        total = sum(
            engine.edge_delay(a, b)
            for a, b in zip(path.gates, path.gates[1:])
        )
        assert total >= path.arrival - 1e-9


class TestWorstPaths:
    def test_multiple_blocks(self, engine):
        text = report_worst_paths(engine, count=3)
        assert text.count("Startpoint:") == 3

    def test_ordered_by_arrival(self, engine):
        text = report_worst_paths(engine, count=2)
        blocks = text.split("=" * 48)
        arrivals = []
        for block in blocks:
            for line in block.splitlines():
                if "data arrival time" in line:
                    arrivals.append(float(line.split()[-1]))
        assert arrivals == sorted(arrivals, reverse=True)
