"""Smoke tests: every example script must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


def test_quickstart(capsys):
    run_example("quickstart.py", ["s1196", "1.0"])
    out = capsys.readouterr().out
    assert "grar" in out and "base" in out
    assert "vs base" in out


def test_worked_example(capsys):
    run_example("worked_example.py")
    out = capsys.readouterr().out
    assert "g(O9) -> target" in out
    assert "['G5', 'G6']" in out
    assert "Cut2" in out


def test_clocking_diagram(capsys):
    run_example("clocking_diagram.py", ["1.0"])
    out = capsys.readouterr().out
    assert "clk1" in out and "clk2" in out
    assert "constraint (6)" in out


def test_custom_circuit(capsys):
    run_example("custom_circuit.py")
    out = capsys.readouterr().out
    assert "G-RAR" in out
    assert "error rate" in out
    assert "0 non-EDL violations" in out


def test_full_suite_single_circuit(capsys):
    run_example("full_suite.py", ["s1196"])
    out = capsys.readouterr().out
    assert "Table V" in out and "Table VIII" in out


def test_hold_margins(capsys):
    run_example("hold_margins.py", ["s1488"])
    out = capsys.readouterr().out
    assert "hold margin" in out
    assert "buffers inserted" in out


def test_error_rate_tradeoff_example(capsys):
    run_example("error_rate_tradeoff.py", ["s1488", "1.0"])
    out = capsys.readouterr().out
    assert "rescue-budget sweep" in out
