"""Tests for placements and the two-phase resilient circuit model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.fig4 import fig4_circuit
from repro.latches import HOST, SlavePlacement, TwoPhaseCircuit
from repro.latches.conversion import flop_resilient_area, original_flop_report
from repro.netlist.netlist import GateType


def cut2_placement():
    """The paper's Cut2: slaves after G4, G5, G6."""
    return SlavePlacement(
        retimed={"I1", "I2", "G3", "G4", "G5", "G6"}
    )


def cut1_placement():
    """The paper's Cut1: slaves after G3 and I2."""
    return SlavePlacement(retimed={"I1", "I2", "G3"})


class TestSlavePlacement:
    def test_initial_all_host_edges(self, fig4):
        placement = SlavePlacement.initial()
        edges = set(placement.latch_edges(fig4.netlist))
        assert edges == {(HOST, "I1"), (HOST, "I2")}

    def test_r_accessors(self):
        placement = SlavePlacement.initial()
        placement.set_r("x", -1)
        assert placement.r("x") == -1
        placement.set_r("x", 0)
        assert placement.r("x") == 0
        with pytest.raises(ValueError):
            placement.set_r("x", 1)

    def test_from_r_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SlavePlacement.from_r({"a": -2})

    def test_cut1_edges_and_sites(self, fig4):
        placement = cut1_placement()
        edges = set(placement.latch_edges(fig4.netlist))
        assert edges == {("G3", "G4"), ("G3", "G6"), ("I2", "G4"), ("I2", "G5")}
        sites = placement.latch_sites(fig4.netlist)
        # Fanout sharing: one latch at G3, one at I2 (paper: 2 slaves).
        assert placement.slave_count(fig4.netlist) == 2
        assert {s for s, _ in sites} == {"G3", "I2"}

    def test_cut2_three_latches(self, fig4):
        placement = cut2_placement()
        assert placement.slave_count(fig4.netlist) == 3
        sites = {s for s, _ in placement.latch_sites(fig4.netlist)}
        assert sites == {"G4", "G5", "G6"}

    def test_host_edges_not_shared(self, fig4):
        """Each master's slave is distinct: two host latches = 2."""
        placement = SlavePlacement.initial()
        assert placement.slave_count(fig4.netlist) == 2

    def test_negative_edge_detection(self, fig4):
        # Retiming G6 without its fanin G3 starves edge (G3, G6).
        placement = SlavePlacement(retimed={"G6"})
        bad = placement.check_nonnegative(fig4.netlist)
        assert ("G3", "G6") in bad

    def test_dff_sink_role_fixed(self, tiny_netlist):
        """Edges into a flop's D pin always use r = 0 for the sink."""
        placement = SlavePlacement(retimed={"f1"})
        # Host edge to f1's Q side reflects the move...
        assert placement.edge_weight_after(tiny_netlist, HOST, "f1") == 0
        # ...but the D-side edge g3 -> f1 does not see r(f1).
        assert placement.edge_weight_after(tiny_netlist, "g3", "f1") == 0

    def test_copy_and_eq(self):
        a = SlavePlacement(retimed={"x"})
        b = a.copy()
        assert a == b
        b.set_r("y", -1)
        assert a != b


class TestFig4Timing:
    def test_paper_a_values(self, fig4):
        """Eq. (5) arrivals quoted in Section IV-A."""
        assert fig4.arrival_through("G6", "G7", "O9") == pytest.approx(9)
        assert fig4.arrival_through("G3", "G6", "O9") == pytest.approx(12)
        assert fig4.arrival_through("G5", "G7", "O9") == pytest.approx(7)
        assert fig4.arrival_through("I2", "G5", "O9") == pytest.approx(12)

    def test_cut1_arrival_12(self, fig4):
        assert fig4.endpoint_arrival(
            cut1_placement(), "O9"
        ) == pytest.approx(12)

    def test_cut2_arrival_9(self, fig4):
        assert fig4.endpoint_arrival(
            cut2_placement(), "O9"
        ) == pytest.approx(9)

    def test_cut1_edl_cut2_not(self, fig4):
        assert fig4.is_edl(cut1_placement(), "O9")
        assert not fig4.is_edl(cut2_placement(), "O9")
        assert not fig4.is_edl(cut1_placement(), "O10")
        assert not fig4.is_edl(cut2_placement(), "O10")

    def test_paper_unit_costs(self, fig4):
        """Cut1 costs 5 units, Cut2 costs 4 at c = 2 (plus the O10
        master both cuts pay equally)."""
        cost1 = fig4.sequential_cost(cut1_placement(), overhead=2.0)
        cost2 = fig4.sequential_cost(cut2_placement(), overhead=2.0)
        # Paper counts only O9's master; both placements add O10's.
        assert cost1.latch_units == pytest.approx(5 + 1)
        assert cost2.latch_units == pytest.approx(4 + 1)
        assert cost2.latch_units < cost1.latch_units

    def test_arrivals_dp_matches_per_endpoint(self, fig4):
        for placement in (
            SlavePlacement.initial(), cut1_placement(), cut2_placement()
        ):
            bulk = fig4.endpoint_arrivals(placement)
            for endpoint in fig4.endpoint_names:
                assert bulk[endpoint] == pytest.approx(
                    fig4.endpoint_arrival(placement, endpoint)
                )

    def test_regions_match_paper(self, fig4):
        assert fig4.region_vm() == {"I1"}
        assert fig4.region_vn() == {"G7", "G8"}
        assert fig4.region_vr() == {"I2", "G3", "G4", "G5", "G6"}

    def test_legality_cut2(self, fig4):
        report = fig4.check_legality(cut2_placement())
        assert report.ok
        assert not report.window_overflows

    def test_initial_placement_violates_backward(self, fig4):
        """The initial position breaks constraint (7) through I1."""
        report = fig4.check_legality(SlavePlacement.initial())
        assert report.backward_violations
        assert report.needs_sizing

    def test_retimed_po_flagged(self, fig4):
        placement = cut2_placement()
        placement.set_r("O9", -1)
        report = fig4.check_legality(placement)
        assert "O9" in report.retimed_endpoints
        assert not report.ok


class TestCircuitQueries:
    def test_df_host_is_zero(self, fig4):
        assert fig4.df(HOST) == 0.0

    def test_always_edl_uses_plain_arrival(self, fig4):
        # O9's longest path is 9 < Pi = 10: not forced.
        assert fig4.always_edl_endpoints() == set()

    def test_latch_area_unit_without_library(self, fig4):
        assert fig4.latch_area == 1.0

    def test_sequential_cost_fields(self, fig4):
        cost = fig4.sequential_cost(cut2_placement(), overhead=0.5)
        assert cost.n_slaves == 3
        assert cost.n_masters == 2
        assert cost.n_edl == 0
        assert cost.latch_units == pytest.approx(5.0)

    def test_total_area_requires_library(self, fig4):
        with pytest.raises(ValueError):
            fig4.total_area(cut2_placement(), 1.0)


class TestConversion:
    def test_flop_report(self, small_prepared, small_netlist, library):
        scheme, _ = small_prepared
        report = original_flop_report(small_netlist, scheme, library)
        assert report.n_flops == 10
        assert report.total_area == pytest.approx(
            report.comb_area + report.flop_area
        )
        assert 0 <= report.n_near_critical <= 14
        assert report.worst_arrival <= scheme.max_path_delay + 1e-9

    def test_flop_resilient_area_scales_with_overhead(
        self, small_prepared, small_netlist, library
    ):
        scheme, _ = small_prepared
        report = original_flop_report(small_netlist, scheme, library)
        low = flop_resilient_area(report, library, 0.5)
        high = flop_resilient_area(report, library, 2.0)
        assert high >= low >= report.total_area


class TestPlacementProperties:
    @given(st.sets(st.sampled_from(
        ["I1", "I2", "G3", "G4", "G5", "G6"]
    )))
    @settings(max_examples=40, deadline=None)
    def test_path_latch_count_invariant(self, retimed):
        """Any legal placement keeps exactly one latch per path.

        Retiming preserves path weights: for every source-to-endpoint
        path, the number of latched edges is exactly one whenever no
        edge weight went negative.
        """
        circuit = fig4_circuit()
        netlist = circuit.netlist
        placement = SlavePlacement(retimed=set(retimed))
        if placement.check_nonnegative(netlist):
            return  # illegal move; not a valid retiming
        latched = set(placement.latch_edges(netlist))

        def count_paths(node, crossed):
            gate = netlist[node]
            if gate.is_source:
                host_crossed = crossed + (
                    1 if (HOST, node) in latched else 0
                )
                assert host_crossed == 1
                return
            for driver in gate.fanins:
                edge_crossed = crossed + (
                    1 if (driver, node) in latched else 0
                )
                assert edge_crossed <= 1
                count_paths(driver, edge_crossed)

        for endpoint in circuit.endpoint_names:
            count_paths(endpoint, 0)
