"""Tests for min-delay analysis and hold fixing."""

import pytest

from repro.sta import TimingEngine
from repro.sta.min_delay import MinDelayAnalysis
from repro.synth.hold_fix import fix_hold


@pytest.fixture()
def analysis(small_netlist, library):
    return MinDelayAnalysis(small_netlist.copy(), library)


class TestMinDelay:
    def test_min_bounded_by_max(self, small_netlist, library):
        """Minimum arrivals can never exceed maximum arrivals."""
        netlist = small_netlist.copy()
        min_dp = MinDelayAnalysis(netlist, library)
        max_dp = TimingEngine(netlist, library)
        for gate in netlist.endpoints():
            assert (
                min_dp.min_endpoint_arrival(gate.name)
                <= max_dp.endpoint_arrival(gate.name) + 1e-9
            )

    def test_sources_at_zero(self, analysis):
        for gate in analysis.netlist.sources():
            assert analysis.min_arrival(gate.name) == 0.0

    def test_min_edge_delay_positive(self, analysis):
        gate = analysis.netlist.comb_gates()[0]
        for driver in gate.fanins:
            assert analysis.min_edge_delay(driver, gate.name) > 0

    def test_trace_min_path_connected(self, analysis):
        endpoint = analysis.netlist.endpoints()[0].name
        path = analysis.trace_min_path(endpoint)
        assert path[-1] == endpoint
        assert analysis.netlist[path[0]].is_source
        for driver, sink in zip(path, path[1:]):
            assert driver in analysis.netlist[sink].fanins

    def test_hold_violations_monotone_in_bound(self, analysis):
        few = analysis.hold_violations(0.001)
        many = analysis.hold_violations(1.0)
        assert set(few) <= set(many)

    def test_endpoint_guard(self, analysis):
        with pytest.raises(ValueError):
            analysis.min_endpoint_arrival(
                analysis.netlist.comb_gates()[0].name
            )


class TestHoldFix:
    def test_fixes_violations(self, small_netlist, library):
        netlist = small_netlist.copy()
        analysis = MinDelayAnalysis(netlist, library)
        # A bound just above the current shortest endpoint path.
        shortest = min(
            analysis.min_endpoint_arrival(g.name)
            for g in netlist.endpoints()
        )
        bound = shortest + 0.03
        before = analysis.hold_violations(bound)
        assert before  # something to fix
        report = fix_hold(netlist, library, bound)
        assert report.n_buffers > 0
        assert not report.unresolved
        assert set(report.fixed_endpoints) == set(before)
        after = MinDelayAnalysis(netlist, library)
        assert not after.hold_violations(bound)

    def test_restricted_endpoints(self, small_netlist, library):
        netlist = small_netlist.copy()
        analysis = MinDelayAnalysis(netlist, library)
        shortest_ep = min(
            (g.name for g in netlist.endpoints()),
            key=analysis.min_endpoint_arrival,
        )
        bound = analysis.min_endpoint_arrival(shortest_ep) + 0.02
        report = fix_hold(
            netlist, library, bound, endpoints={shortest_ep}
        )
        assert not report.unresolved
        # Other endpoints were not in scope (may still violate).
        check = MinDelayAnalysis(netlist, library)
        assert check.min_endpoint_arrival(shortest_ep) >= bound - 1e-9

    def test_no_op_when_clean(self, small_netlist, library):
        netlist = small_netlist.copy()
        report = fix_hold(netlist, library, required_min=0.0)
        assert report.n_buffers == 0
        assert report.area_delta == 0.0

    def test_buffers_preserve_function(self, small_netlist, library):
        """Inserted buffers must not change logic values."""
        netlist = small_netlist.copy()
        analysis = MinDelayAnalysis(netlist, library)
        shortest = min(
            analysis.min_endpoint_arrival(g.name)
            for g in netlist.endpoints()
        )
        fix_hold(netlist, library, shortest + 0.02)

        def evaluate(target, values):
            for name in target.topo_order():
                gate = target[name]
                if gate.is_comb:
                    cell = library[gate.cell]
                    values[name] = cell.evaluate(
                        [values[f] for f in gate.fanins]
                    )
            return {
                g.name: values[g.fanins[0]]
                for g in target.endpoints()
            }

        launch = {
            g.name: (hash(g.name) >> 3) & 1
            for g in small_netlist.sources()
        }
        original = evaluate(small_netlist, dict(launch))
        padded = evaluate(netlist, dict(launch))
        assert original == padded

    def test_max_delay_impact_is_local(self, small_netlist, library):
        """Padding short paths must not blow up the critical path."""
        netlist = small_netlist.copy()
        before = TimingEngine(netlist, library).worst_arrival()
        analysis = MinDelayAnalysis(netlist, library)
        shortest = min(
            analysis.min_endpoint_arrival(g.name)
            for g in netlist.endpoints()
        )
        fix_hold(netlist, library, shortest + 0.02)
        after = TimingEngine(netlist, library).worst_arrival()
        assert after <= before * 1.10
