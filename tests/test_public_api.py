"""The package's public face: top-level exports and their coherence."""

import pytest

import repro


class TestTopLevel:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_shape(self):
        """The README's quickstart, condensed."""
        library = repro.default_library()
        netlist = repro.build_benchmark("s1488", library)
        scheme, _ = repro.prepare_circuit(netlist, library)
        base = repro.run_flow(
            "base", netlist, library, overhead=1.0, scheme=scheme
        )
        grar = repro.run_flow(
            "grar", netlist, library, overhead=1.0, scheme=scheme
        )
        assert grar.sequential_area <= base.sequential_area * 1.05

    def test_methods_list_is_complete(self):
        for method in repro.METHODS:
            assert isinstance(method, str)
        assert "grar" in repro.METHODS and "base" in repro.METHODS

    def test_suite_names_cover_paper(self):
        names = repro.suite_names()
        assert len(names) == 12
        assert names[-1] == "plasma"


class TestPaperRegistryConsistency:
    def test_profiles_match_registry(self):
        from repro.circuits import BENCHMARK_PROFILES
        from repro.harness.paper import PAPER_TABLE1

        for name, (period, flops, nce, area) in PAPER_TABLE1.items():
            if name == "plasma":
                continue  # built structurally, no generator profile
            profile = BENCHMARK_PROFILES[name]
            assert profile.n_flops == flops
            assert profile.paper_nce == nce
            assert profile.paper_area == pytest.approx(area)
            assert profile.paper_period_ns == pytest.approx(period)
