"""Tests for cell timing models, logic functions, and cell classes."""

import pytest
from hypothesis import given, strategies as st

from repro.cells.cell import (
    CombCell,
    FUNCTIONS,
    evaluate_function,
)
from repro.cells.timing import DelayModel, SequentialTiming, TimingArc


class TestDelayModel:
    def test_delay_linear_in_load(self):
        model = DelayModel(intrinsic=0.01, resistance=0.005)
        assert model.delay(0.0) == pytest.approx(0.01)
        assert model.delay(4.0) == pytest.approx(0.03)

    def test_slew_contribution(self):
        model = DelayModel(intrinsic=0.01, resistance=0.0, slew_impact=0.1)
        assert model.delay(0.0, input_slew=0.05) == pytest.approx(0.015)

    def test_output_slew(self):
        model = DelayModel(0.0, slew_intrinsic=0.02, slew_resistance=0.01)
        assert model.output_slew(3.0) == pytest.approx(0.05)

    def test_scaled_stronger_drive(self):
        base = DelayModel(intrinsic=0.01, resistance=0.008)
        strong = base.scaled(delay_factor=1.05, drive_factor=2.0)
        assert strong.intrinsic == pytest.approx(0.0105)
        assert strong.resistance == pytest.approx(0.004)
        # Heavily loaded, the strong cell must win.
        assert strong.delay(10) < base.delay(10)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=20),
    )
    def test_delay_monotone_in_load(self, intrinsic, resistance, load):
        model = DelayModel(intrinsic=intrinsic, resistance=resistance)
        assert model.delay(load) >= model.delay(0.0) - 1e-12


class TestTimingArc:
    def _arc(self):
        return TimingArc(
            input_pin="A",
            rise=DelayModel(0.02, 0.01),
            fall=DelayModel(0.015, 0.008),
        )

    def test_max_min_delay(self):
        arc = self._arc()
        assert arc.max_delay(1.0) == pytest.approx(0.03)
        assert arc.min_delay(1.0) == pytest.approx(0.023)

    def test_delay_for_output_edge(self):
        arc = self._arc()
        assert arc.delay_for_output_edge(True, 1.0) == pytest.approx(0.03)
        assert arc.delay_for_output_edge(False, 1.0) == pytest.approx(0.023)

    def test_max_output_slew(self):
        arc = TimingArc(
            "A",
            rise=DelayModel(0, slew_intrinsic=0.02, slew_resistance=0.01),
            fall=DelayModel(0, slew_intrinsic=0.01, slew_resistance=0.02),
        )
        assert arc.max_output_slew(2.0) == pytest.approx(0.05)


class TestSequentialTiming:
    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            SequentialTiming(setup=-1, hold=0, clock_to_q=0)

    def test_with_setup(self):
        timing = SequentialTiming(0.02, 0.01, 0.05, 0.03)
        extended = timing.with_setup(0.3)
        assert extended.setup == 0.3
        assert extended.clock_to_q == timing.clock_to_q
        assert extended.data_to_q == timing.data_to_q


class TestEvaluateFunction:
    @pytest.mark.parametrize(
        "function,inputs,expected",
        [
            ("BUF", [1], 1),
            ("INV", [1], 0),
            ("AND", [1, 1, 1], 1),
            ("AND", [1, 0, 1], 0),
            ("NAND", [1, 1], 0),
            ("NAND", [0, 1], 1),
            ("OR", [0, 0], 0),
            ("OR", [0, 1], 1),
            ("NOR", [0, 0], 1),
            ("XOR", [1, 0], 1),
            ("XOR", [1, 1], 0),
            ("XOR", [1, 1, 1], 1),
            ("XNOR", [1, 0], 0),
            ("AOI21", [1, 1, 0], 0),
            ("AOI21", [0, 1, 0], 1),
            ("OAI21", [0, 0, 1], 1),
            ("OAI21", [1, 0, 1], 0),
            ("MUX2", [1, 0, 0], 1),
            ("MUX2", [1, 0, 1], 0),
        ],
    )
    def test_truth_tables(self, function, inputs, expected):
        assert evaluate_function(function, inputs) == expected

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            evaluate_function("NOPE", [0])

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            evaluate_function("MUX2", [0, 1])

    def test_empty_variadic(self):
        with pytest.raises(ValueError):
            evaluate_function("AND", [])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
    def test_demorgan(self, bits):
        nand = evaluate_function("NAND", bits)
        or_inv = evaluate_function("OR", [b ^ 1 for b in bits])
        assert nand == or_inv

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
    def test_xor_parity(self, bits):
        assert evaluate_function("XOR", bits) == sum(bits) % 2


class TestCombCell:
    def test_library_cell_shape(self, library):
        cell = library["NAND2_X1"]
        assert isinstance(cell, CombCell)
        assert cell.inputs == ("A", "B")
        assert cell.function == "NAND"
        assert cell.drive == 1
        assert cell.vt == "svt"

    def test_base_name_strips_suffixes(self, library):
        assert library["NAND2_X2"].base_name == "NAND2"
        assert library["NAND2_LVT_X2"].base_name == "NAND2"

    def test_worst_delay_positive(self, library):
        cell = library["XOR2_X1"]
        assert cell.worst_delay(2.0) > 0

    def test_missing_arc_rejected(self):
        with pytest.raises(ValueError):
            CombCell(name="BAD", area=1.0, function="NAND", inputs=("A", "B"))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CombCell(
                name="BAD", area=1.0, function="MUX2", inputs=("A",), arcs={}
            )

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            CombCell(name="BAD", area=-1.0)

    def test_evaluate_uses_function(self, library):
        cell = library["AOI21_X1"]
        assert cell.evaluate([1, 1, 0]) == 0
        assert cell.evaluate([0, 0, 0]) == 1

    def test_every_function_has_registered_arity(self):
        for function, arity in FUNCTIONS.items():
            if arity is not None:
                assert arity >= 1
