"""Parallel experiment engine, memo-key, and checkpoint regressions.

Covers the PR's tentpole (sequential-vs-parallel parity, canonical-cell
planning, batched checkpoints) and the memo-key bugfix: the legacy
``|``-joined key was not injective (a ``|`` in the method segment made
``rsplit("|", 2)`` mis-split), so two distinct cells could collide in a
resumed memo.
"""

import json
import math
import os
import random

import pytest

from repro.circuits.generator import CloudSpec, generate_circuit
from repro.errors import ReproError
from repro.faults import corrupt_net
from repro.flows import FlowOutcome
from repro.harness import ExperimentSuite, plan_cells, run_suite_parallel
from repro.harness.experiments import LEVELS, FailedOutcome, FlowRecord
from repro.harness.parallel import methods_for_tables


def _tiny_suite(library, memo_path=None, isolate=False, circuits=2):
    names = ["alpha", "bravo", "charlie"][:circuits]
    suite = ExperimentSuite(
        circuits=names,
        library=library,
        error_rate_cycles=16,
        isolate=isolate,
        memo_path=memo_path,
    )
    for index, name in enumerate(names):
        spec = CloudSpec(
            name=name,
            seed=40 + index,
            n_inputs=4,
            n_outputs=3,
            n_flops=6,
            n_gates=40,
            depth=5,
            critical_fraction=0.3,
        )
        suite._netlists[name] = generate_circuit(spec, library)
    return suite


class TestMemoKeyEncoding:
    """Bugfix 3: memo keys must be injective and migration-safe."""

    ADVERSARIAL = [
        ("s1488", "base", 1.0),
        ("we|ird", "base", 0.5),
        ("a", "rvl|x", 1.0),  # legacy rsplit mis-split this one
        ("a|b", "c|d", 2.0),
        ("[json-looking", "grar", 1.0),
    ]

    @pytest.mark.parametrize("key", ADVERSARIAL)
    def test_round_trip(self, key):
        encoded = ExperimentSuite._memo_key(key)
        assert ExperimentSuite._decode_memo_key(encoded) == key

    def test_encoding_is_injective_over_adversarial_keys(self):
        encoded = {ExperimentSuite._memo_key(k) for k in self.ADVERSARIAL}
        assert len(encoded) == len(self.ADVERSARIAL)

    def test_new_keys_are_json_arrays(self):
        encoded = ExperimentSuite._memo_key(("s1488", "base", 1.0))
        assert encoded.startswith("[")
        assert json.loads(encoded) == ["s1488", "base", 1.0]

    def test_legacy_pipe_format_still_decodes(self):
        assert ExperimentSuite._decode_memo_key("s1488|base|1.0") == (
            "s1488", "base", 1.0
        )

    def test_adversarial_cell_survives_checkpoint_resume(
        self, library, tmp_path
    ):
        """Public-API pin: pre-fix, resume decoded this cell as
        ``('a|rvl', 'x', 1.0)`` — a different (corrupt) key."""
        memo = str(tmp_path / "memo.json")
        key = ("a", "rvl|x", 1.0)
        record = FlowRecord(
            method="rvl|x", circuit_name="a", overhead=1.0,
            n_slaves=5, n_masters=3, n_edl=2, latch_area=1.5,
            comb_area=40.0, runtime_s=0.1,
        )
        suite = _tiny_suite(library, memo_path=memo)
        suite._outcomes[key] = record
        suite.checkpoint(force=True)
        resumed = _tiny_suite(library, memo_path=memo)
        assert key in resumed._outcomes
        assert ("a|rvl", "x", 1.0) not in resumed._outcomes

    def test_legacy_memo_file_migrates(self, library, tmp_path):
        memo = str(tmp_path / "memo.json")
        record = FlowRecord(
            method="grar", circuit_name="alpha", overhead=1.0,
            n_slaves=5, n_masters=3, n_edl=2, latch_area=1.5,
            comb_area=40.0, runtime_s=0.1, solver_backend="simplex",
        )
        with open(memo, "w", encoding="utf-8") as stream:
            json.dump(
                {
                    "runs": {"alpha|grar|1.0": record.__dict__},
                    "error_rates": {"alpha|grar|1.0": 12.5},
                },
                stream,
            )
        suite = _tiny_suite(library, memo_path=memo)
        resumed = suite._outcomes[("alpha", "grar", 1.0)]
        assert isinstance(resumed, FlowRecord)
        assert resumed.total_area == pytest.approx(record.total_area)
        assert suite._error_rates[("alpha", "grar", 1.0)] == 12.5
        # The next checkpoint rewrites the memo in the new encoding.
        assert suite.checkpoint(force=True)
        rewritten = json.loads(open(memo, encoding="utf-8").read())
        assert all(k.startswith("[") for k in rewritten["runs"])
        assert all(k.startswith("[") for k in rewritten["error_rates"])


class TestCheckpointBatching:
    def test_unforced_checkpoints_batch(self, library, tmp_path):
        memo = str(tmp_path / "memo.json")
        suite = _tiny_suite(library)
        suite.memo_path = memo
        suite.checkpoint_every = 3
        assert not suite.checkpoint(force=False)
        assert not suite.checkpoint(force=False)
        assert not os.path.exists(memo)
        assert suite.checkpoint(force=False)
        assert os.path.exists(memo)

    def test_force_always_writes(self, library, tmp_path):
        memo = str(tmp_path / "memo.json")
        suite = _tiny_suite(library)
        suite.memo_path = memo
        suite.checkpoint_every = 100
        assert suite.checkpoint(force=True)
        assert os.path.exists(memo)

    def test_interval_flushes_a_stale_batch(self, library, tmp_path):
        memo = str(tmp_path / "memo.json")
        suite = _tiny_suite(library)
        suite.memo_path = memo
        suite.checkpoint_every = 100
        suite.checkpoint_interval_s = 0.05
        assert not suite.checkpoint(force=False)
        suite._last_checkpoint -= 1.0
        assert suite.checkpoint(force=False)

    def test_no_memo_path_is_a_noop(self, library):
        suite = _tiny_suite(library)
        assert not suite.checkpoint(force=True)


class TestMemoResume:
    def test_round_trip_with_recost_failure_and_error_rate(
        self, library, tmp_path
    ):
        memo = str(tmp_path / "memo.json")
        first = _tiny_suite(library, memo_path=memo, isolate=True)
        corrupt_net(first._netlists["bravo"], random.Random(0))

        base_area = first.outcome("alpha", "base", 2.0).total_area
        rate = first.error_rate("alpha", "base", 1.0)
        failed = first.outcome("bravo", "grar", 1.0)
        assert isinstance(failed, FailedOutcome)
        first.checkpoint(force=True)

        payload = json.loads(open(memo, encoding="utf-8").read())
        keys = {
            tuple(json.loads(k)[:2]) + (json.loads(k)[2],)
            for k in payload["runs"]
        }
        # The re-costed C_INDEPENDENT cell persists under its own key...
        assert ("alpha", "base", 2.0) in keys
        # ...and the failed cell is NOT resumable as a success.
        assert ("bravo", "grar", 1.0) not in keys
        assert payload["failures"]

        resumed = _tiny_suite(library, memo_path=memo, isolate=True)
        record = resumed.outcome("alpha", "base", 2.0)
        assert isinstance(record, FlowRecord)
        assert record.overhead == 2.0
        assert record.total_area == pytest.approx(base_area)
        assert resumed.error_rate("alpha", "base", 1.0) == pytest.approx(
            rate
        )
        # The failed cell re-runs on resume: this suite's bravo netlist
        # is healthy, so the re-run comes back as a live outcome.
        again = resumed.outcome("bravo", "grar", 1.0)
        assert isinstance(again, FlowOutcome)


class TestPlanCells:
    def test_c_independent_cells_are_canonical_only(self, library):
        suite = _tiny_suite(library)
        tasks = plan_cells(
            suite, methods=("base", "grar"), error_rates=False
        )
        base = [t for t in tasks if t.method == "base"]
        grar = [t for t in tasks if t.method == "grar"]
        assert {t.overhead for t in base} == {1.0}
        assert all(t.sweep == (1.0,) for t in base)
        # G-RAR ships one task per circuit covering the whole sweep, so
        # the worker's compiled problem and warm basis are reused.
        assert len(grar) == len(suite.circuit_names)
        sweep = tuple(c for _, c in LEVELS)
        assert all(t.sweep == sweep for t in grar)
        assert len({t.key for t in tasks}) == len(tasks)

    def test_grar_tasks_split_per_cell_with_cache_off(self, library):
        suite = _tiny_suite(library)
        suite.retime_cache = False
        tasks = plan_cells(suite, methods=("grar",), error_rates=False)
        assert all(len(t.sweep) == 1 for t in tasks)
        assert {t.overhead for t in tasks} == {c for _, c in LEVELS}

    def test_memoized_cells_are_skipped(self, library):
        suite = _tiny_suite(library)
        suite.retime_cache = False  # memoize 1.0 only, not the sweep
        suite.outcome("alpha", "grar", 1.0)
        suite.retime_cache = True
        tasks = plan_cells(suite, methods=("grar",), error_rates=False)
        covered = {
            (t.circuit, t.method, c) for t in tasks for c in t.sweep
        }
        assert ("alpha", "grar", 1.0) not in covered
        # The rest of alpha's sweep is still planned, minus the
        # memoized point.
        alpha = [t for t in tasks if t.circuit == "alpha"]
        assert len(alpha) == 1
        assert alpha[0].sweep == tuple(
            c for _, c in LEVELS if c != 1.0
        )

    def test_resumed_record_still_owes_its_error_rate(self, library):
        suite = _tiny_suite(library)
        outcome = suite.outcome("alpha", "base", 1.0)
        suite._outcomes[("alpha", "base", 1.0)] = FlowRecord.from_outcome(
            outcome
        )
        tasks = plan_cells(suite, methods=("base",), error_rates=True)
        owed = [t for t in tasks if t.key == ("alpha", "base", 1.0)]
        assert len(owed) == 1 and owed[0].error_rate

    def test_methods_for_tables_selection(self):
        methods, rates = methods_for_tables(None)
        assert "grar" in methods and rates
        methods, rates = methods_for_tables(["table ix"])
        assert methods == ("rvl", "rvl-movable") and not rates
        methods, rates = methods_for_tables(["table viii"])
        assert set(methods) == {"base", "rvl", "grar"} and rates


class TestParallelParity:
    """Tentpole acceptance: parallel results == sequential results."""

    #: Deterministic tables (areas, counts, error rates) — Table VII is
    #: wall-clock and can never be bit-identical between two runs.
    @staticmethod
    def _render_tables(suite):
        return {
            "iv": suite.table4().render(),
            "v": suite.table5().render(),
            "vi": suite.table6().render(),
            "viii": suite.table8().render(),
        }

    def test_parallel_tables_bit_identical_to_sequential(self, library):
        sequential = _tiny_suite(library)
        expected = self._render_tables(sequential)

        parallel = _tiny_suite(library)
        summary = run_suite_parallel(
            parallel,
            jobs=2,
            methods=("base", "rvl", "grar"),
            error_rates=True,
        )
        assert summary["n_cells"] > 0
        assert summary["n_failed"] == 0
        assert self._render_tables(parallel) == expected

    def test_inline_path_matches_too(self, library):
        sequential = _tiny_suite(library, circuits=1)
        expected = sequential.table5().render()
        inline = _tiny_suite(library, circuits=1)
        run_suite_parallel(
            inline, jobs=1, methods=("base", "rvl", "grar"),
            error_rates=False,
        )
        assert inline.table5().render() == expected

    def test_summary_shape(self, library):
        suite = _tiny_suite(library, circuits=1)
        summary = run_suite_parallel(
            suite, jobs=2, methods=("base",), error_rates=False
        )
        assert summary["jobs"] == 2
        assert summary["n_cells"] == 1
        assert summary["wall_s"] > 0
        assert summary["parallel_efficiency"] >= 0
        cell = summary["cells"][0]
        assert cell["circuit"] == "alpha" and cell["method"] == "base"
        assert cell["solver_backend"]


class TestParallelFailures:
    def test_isolated_failure_becomes_failed_cell(self, library):
        suite = _tiny_suite(library, isolate=True)
        corrupt_net(suite._netlists["bravo"], random.Random(0))
        run_suite_parallel(
            suite, jobs=2, methods=("base", "grar"), error_rates=False
        )
        assert suite.failures
        table = suite.table5()
        assert "FAILED" in table.render()
        rows = {row[0]: row for row in table.rows}
        assert all(math.isnan(v) for v in rows["bravo"][1:])

    def test_strict_failure_reraises_typed_error(self, library):
        suite = _tiny_suite(library, isolate=False)
        corrupt_net(suite._netlists["bravo"], random.Random(0))
        with pytest.raises(ReproError):
            run_suite_parallel(
                suite, jobs=2, methods=("grar",), error_rates=False
            )


class TestCliParallel:
    def test_jobs_and_bench_out(self, tmp_path, capsys):
        from repro.cli import main

        bench = str(tmp_path / "BENCH_suite.json")
        code = main(
            [
                "tables", "s1488",
                "--tables", "table ix",
                "--jobs", "2",
                "--cycles", "16",
                "--bench-out", bench,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IX" in out
        report = json.loads(open(bench, encoding="utf-8").read())
        assert report["schema"] == "repro-bench/1"
        assert report["jobs"] == 2
        assert report["parallel"]["n_cells"] == 2
        assert report["counters"]["flow.runs"] >= 2
        assert "retime" in report["stages"]


# -- deadline-enforcing runner ----------------------------------------
#
# Worker functions live at module level so the spawn/fork pickling of
# multiprocessing always resolves them.

def _dl_ok(task):
    return task * 10


def _dl_crash(task):
    from repro.errors import FlowStageError

    if task == "boom":
        raise FlowStageError("deliberate crash", stage="drill")
    return task


def _dl_hang(task):
    import time as _time

    if task == "hang":
        _time.sleep(60.0)
    return task


def _dl_untyped(task):
    raise RuntimeError("not a ReproError")


class TestDeadlineRunner:
    def test_plain_results_in_order(self):
        from repro.harness.parallel import run_tasks_with_deadline

        results = run_tasks_with_deadline(_dl_ok, [1, 2, 3], jobs=2)
        assert results == [10, 20, 30]

    def test_typed_crash_is_not_retried(self):
        from repro.harness.parallel import (
            TaskFailure,
            run_tasks_with_deadline,
        )

        results = run_tasks_with_deadline(
            _dl_crash, ["fine", "boom"], jobs=2
        )
        assert results[0] == "fine"
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 1
        assert failure.error["stage"] == "drill"
        err = failure.to_error()
        assert err.stage == "drill"
        assert err.payload["failure_kind"] == "crash"

    def test_untyped_crash_still_settles(self):
        from repro.harness.parallel import (
            TaskFailure,
            run_tasks_with_deadline,
        )

        (failure,) = run_tasks_with_deadline(_dl_untyped, ["x"], jobs=1)
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        assert "not a ReproError" in failure.message

    def test_hang_killed_retried_then_failed(self):
        import time as _time

        from repro.errors import DeadlineError
        from repro.harness.parallel import (
            TaskFailure,
            run_tasks_with_deadline,
        )

        started = _time.perf_counter()
        results = run_tasks_with_deadline(
            _dl_hang, ["ok", "hang"], jobs=2,
            deadline_s=0.5, backoff_s=0.05,
        )
        wall = _time.perf_counter() - started
        assert results[0] == "ok"
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "deadline"
        assert failure.attempts == 2  # killed, retried once, killed
        assert isinstance(failure.to_error(), DeadlineError)
        assert wall < 30.0  # the 60 s sleep never ran to completion

    def test_on_result_sees_every_settlement(self):
        from repro.harness.parallel import run_tasks_with_deadline

        seen = {}
        run_tasks_with_deadline(
            _dl_crash, ["a", "boom", "b"], jobs=2,
            on_result=lambda index, outcome: seen.setdefault(
                index, outcome
            ),
        )
        assert set(seen) == {0, 1, 2}
        assert seen[0] == "a"
        assert seen[2] == "b"

    def test_deadline_validation(self):
        from repro.harness.parallel import run_tasks_with_deadline

        with pytest.raises(ValueError):
            run_tasks_with_deadline(_dl_ok, [1], deadline_s=0.0)


class TestSuiteDeadline:
    def test_hung_cell_becomes_failed_result(self, library, monkeypatch):
        """run_suite_parallel(deadline_s=...) routes through the
        killable runner: a hung cell settles as FAILED(DeadlineError)
        and the rest of the suite completes."""
        import repro.harness.parallel as par

        suite = _tiny_suite(library, isolate=True, circuits=2)
        original = par.run_cell

        def hang_bravo(task):
            if task.circuit == "bravo":
                import time as _time

                _time.sleep(60.0)
            return original(task)

        monkeypatch.setattr(par, "run_cell", hang_bravo)
        summary = par.run_suite_parallel(
            suite, jobs=2, methods=("base",), error_rates=False,
            deadline_s=2.0,
        )
        assert summary["n_cells"] >= 2
        assert suite.failures
        assert any(
            record.error.get("type") == "DeadlineError"
            and record.error["payload"]["failure_kind"] == "deadline"
            and record.error["payload"]["attempts"] == 2
            and record.circuit_name == "bravo"
            for record in suite.failures
        )
        # The healthy circuit still produced its row.
        table = suite.table5()
        assert "FAILED" in table.render()
