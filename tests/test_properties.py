"""Cross-cutting property-based tests on randomly generated circuits.

These hammer the invariants that make the reproduction trustworthy:
solver exactness (simplex == LP), retiming legality, credit soundness,
and arrival-model consistency, across a family of random FSM clouds.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cells import default_library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.flows import prepare_circuit
from repro.latches import SlavePlacement
from repro.retime import (
    base_retime,
    build_retiming_graph,
    compute_cut_sets,
    compute_regions,
    grar_retime,
    solve_retiming_flow,
    solve_retiming_lp,
)

LIBRARY = default_library()


def make_circuit(seed, flops=8, gates=90, depth=6, fraction=0.3):
    spec = CloudSpec(
        name=f"prop{seed}",
        seed=seed,
        n_inputs=4,
        n_outputs=3,
        n_flops=flops,
        n_gates=gates,
        depth=depth,
        critical_fraction=fraction,
    )
    netlist = generate_circuit(spec, LIBRARY)
    _, circuit = prepare_circuit(netlist, LIBRARY)
    return circuit


SEEDS = st.integers(min_value=1, max_value=10**6)
SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSolverExactness:
    @given(SEEDS, st.sampled_from([0.5, 1.0, 2.0]))
    @SLOW
    def test_simplex_matches_lp(self, seed, overhead):
        circuit = make_circuit(seed)
        regions = compute_regions(circuit)
        cuts = compute_cut_sets(circuit, regions)
        graph = build_retiming_graph(circuit, regions, cuts, overhead)
        flow = solve_retiming_flow(graph)
        lp = solve_retiming_lp(graph)
        assert flow.objective == lp.objective

    @given(SEEDS)
    @SLOW
    def test_labels_within_bounds(self, seed):
        circuit = make_circuit(seed)
        regions = compute_regions(circuit)
        graph = build_retiming_graph(circuit, regions)
        flow = solve_retiming_flow(graph)
        for name, (lo, hi) in graph.bounds.items():
            assert lo <= flow.r_values[name] <= hi


class TestRetimingInvariants:
    @given(SEEDS, st.sampled_from([0.5, 2.0]))
    @SLOW
    def test_grar_placement_legal(self, seed, overhead):
        circuit = make_circuit(seed)
        result = grar_retime(circuit, overhead=overhead)
        report = circuit.check_legality(result.placement)
        assert report.ok, report.summary()

    @given(SEEDS)
    @SLOW
    def test_credits_sound(self, seed):
        """Every credit the solver takes must be a real non-EDL master."""
        circuit = make_circuit(seed)
        result = grar_retime(circuit, overhead=2.0)
        edl = circuit.edl_endpoints(result.placement)
        assert not (result.credited_endpoints & edl)

    @given(SEEDS)
    @SLOW
    def test_grar_cost_never_above_base(self, seed):
        circuit = make_circuit(seed)
        grar = grar_retime(circuit, overhead=1.0)
        # The resiliency-unaware *min-area* objective is an upper
        # bound for the G-RAR objective: any min-area labeling extends
        # to the credit graph with only non-positive credit terms.
        # (Realized latch_units can tie-break either way — masters may
        # be non-EDL without an earned credit — so only the objectives
        # are comparable exactly.)
        regions = compute_regions(circuit)
        graph = build_retiming_graph(circuit, regions)
        plain = solve_retiming_flow(graph)
        assert grar.objective <= plain.objective

    @given(SEEDS)
    @SLOW
    def test_arrival_dp_matches_per_endpoint(self, seed):
        circuit = make_circuit(seed, flops=6, gates=60, depth=5)
        result = base_retime(circuit, overhead=1.0)
        placement = result.placement
        bulk = circuit.endpoint_arrivals(placement)
        for endpoint in circuit.endpoint_names:
            assert bulk[endpoint] == pytest.approx(
                circuit.endpoint_arrival(placement, endpoint)
            )

    @given(SEEDS)
    @SLOW
    def test_initial_placement_slave_count(self, seed):
        """Before retiming there is one slave per source."""
        circuit = make_circuit(seed)
        placement = SlavePlacement.initial()
        assert placement.slave_count(circuit.netlist) == len(
            circuit.source_names
        )
