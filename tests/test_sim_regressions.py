"""Regression tests for the Table VIII simulator bug-fix PR.

Each test class pins one fix:

* :class:`TestEventCap` — ``_evaluate_gate`` used to *truncate* the
  candidate-event list to ``max_events_per_net`` (64), silently
  dropping the latest events — exactly the ones that land in the
  resiliency window.  It now keeps every event up to a generous hard
  cap and raises a typed :class:`SimulationError` past it.
* :class:`TestSettledCapture` — ``estimate_error_rate`` sampled the
  next-cycle flop state at ``window_close`` while claiming settled
  capture; it now uses the waveform's final value.
* :class:`TestMinDelayDiagnostics` — ``MinDelayAnalysis`` crashed with
  a bare ``min() arg is an empty sequence`` / ``KeyError`` on
  malformed netlists; it now raises :class:`TimingError` naming the
  gate.
* :class:`TestEndpointWithoutFanins` — ``run_cycle`` raised an opaque
  error for an endpoint with no fanins; both backends now raise
  :class:`NetlistError` naming the endpoint.
* :class:`TestBackendParity` — the compiled kernel's acceptance gate:
  bit-identical :class:`ErrorRateReport` versus the event backend.
* :class:`TestWaveformInvariants` — randomized invariants of the
  waveform primitives both backends rely on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import metrics
from repro.cells import default_library
from repro.clocks.scheme import ClockScheme
from repro.errors import NetlistError, SimulationError, TimingError
from repro.flows import prepare_circuit, run_flow
from repro.latches import SlavePlacement
from repro.netlist import NetlistBuilder
from repro.retime import base_retime
from repro.sim import (
    MAX_EVENTS_PER_NET,
    CompiledSimulator,
    TimedSimulator,
    Waveform,
    estimate_error_rate,
)
from repro.sim.logicsim import _append_preempt
from repro.sim.vectors import VectorSource
from repro.sta.min_delay import MinDelayAnalysis


def _tiny_netlist(library):
    """A fresh copy of the 6-gate/1-flop hand-checkable circuit.

    Built locally (not the session-scoped fixture) because several
    tests corrupt the netlist in place.
    """
    builder = NetlistBuilder("tiny", library)
    for name in ("a", "b", "c"):
        builder.input(name)
    builder.gate("g1", "NAND", ["a", "b"])
    builder.gate("g2", "XOR", ["g1", "c"])
    builder.gate("g3", "INV", ["g2"])
    builder.flop("f1", "g3")
    builder.gate("g4", "AND", ["f1", "a"])
    builder.output("y", "g4")
    return builder.build()


class TestEventCap:
    """The truncation bug: events past ``max_events_per_net`` vanished."""

    def test_long_event_train_keeps_final_value(self, library):
        """A >64-transition input must still settle to the correct
        output value.  The old code truncated the candidate list at 64
        — an odd/even alternation then settled on the *wrong* value."""
        netlist = _tiny_netlist(library)
        _, circuit = prepare_circuit(netlist, library)
        simulator = TimedSimulator(circuit)
        inverter = circuit.netlist["g3"]
        # 99 alternating transitions; truncating at 64 leaves the
        # input "stuck" at the 64th value (0) instead of the last (1).
        wave = Waveform(
            initial=0,
            events=[(0.001 * k, k % 2) for k in range(1, 100)],
        )
        assert wave.final == 1
        out = simulator._evaluate_gate(inverter, [wave])
        assert out.final == 0  # INV of the *true* final input

    def test_overflow_raises_typed_error_with_payload(self, library):
        netlist = _tiny_netlist(library)
        _, circuit = prepare_circuit(netlist, library)
        simulator = TimedSimulator(circuit, max_events_per_net=8)
        inverter = circuit.netlist["g3"]
        wave = Waveform(
            initial=0,
            events=[(0.001 * k, k % 2) for k in range(1, 40)],
        )
        with pytest.raises(SimulationError) as excinfo:
            simulator._evaluate_gate(inverter, [wave])
        error = excinfo.value
        assert "g3" in str(error)
        assert error.payload["gate"] == "g3"
        assert error.payload["n_events"] == 39
        assert error.payload["max_events_per_net"] == 8

    def test_overflow_counted_in_metrics(self, library):
        netlist = _tiny_netlist(library)
        _, circuit = prepare_circuit(netlist, library)
        simulator = TimedSimulator(circuit, max_events_per_net=8)
        inverter = circuit.netlist["g3"]
        wave = Waveform(
            initial=0,
            events=[(0.001 * k, k % 2) for k in range(1, 40)],
        )
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            with pytest.raises(SimulationError):
                simulator._evaluate_gate(inverter, [wave])
        assert collector.counters["sim.event_overflow.gates"] == 1
        assert collector.counters["sim.event_overflow.dropped_events"] == 31

    def test_default_cap_is_generous(self, small_prepared):
        """The cap is a modeling-envelope guard, not a perf budget: it
        must sit far above anything a real cycle produces."""
        _, circuit = small_prepared
        assert MAX_EVENTS_PER_NET >= 4096
        assert TimedSimulator(circuit).max_events_per_net == MAX_EVENTS_PER_NET

    def test_cli_maps_simulation_error_to_exit_code(self):
        from repro.cli import EXIT_SIM, _exit_code

        assert _exit_code(SimulationError("boom")) == EXIT_SIM == 8

    def test_compiled_kernel_enforces_same_cap(self, small_prepared):
        """The kernel honours ``max_events_per_net`` like the event
        backend: an absurdly small cap must raise, not truncate."""
        _, circuit = small_prepared
        placement = SlavePlacement.initial()
        kernel = CompiledSimulator(circuit, placement, max_events_per_net=1)
        launch = {g.name: 1 for g in circuit.netlist.sources()}
        with pytest.raises(SimulationError):
            kernel.run_cycle(launch, {})


class TestSettledCapture:
    """The capture-state bug: flop state sampled at ``window_close``
    instead of the settled (final) waveform value."""

    @pytest.fixture()
    def tight_circuit(self, library):
        """The tiny circuit under a clock so aggressive that data
        keeps arriving *after* the resiliency window closes — the
        regime where sampled and settled values diverge."""
        netlist = _tiny_netlist(library)
        from repro.sta import TimingEngine

        worst = TimingEngine(netlist.copy(), library).worst_arrival()
        tight = ClockScheme(
            phi1=0.1 * worst,
            gamma1=0.15 * worst,
            phi2=0.1 * worst,
            gamma2=0.15 * worst,
        )
        _, circuit = prepare_circuit(netlist, library, scheme=tight)
        return circuit

    def _reference_states(self, circuit, cycles, seed):
        """Lockstep event-driven rerun of ``estimate_error_rate``'s
        state recurrence, capturing both the settled (correct) and the
        window-close-sampled (buggy) flop sequences."""
        scheme = circuit.scheme
        placement = SlavePlacement.initial()
        simulator = TimedSimulator(circuit)
        source = VectorSource(
            [g.name for g in circuit.netlist.inputs()], seed=seed
        )
        flops = [g.name for g in circuit.netlist.flops()]
        settled = {name: 0 for name in flops}
        state = {}
        diverged = False
        for _ in range(cycles):
            launch = dict(settled)
            launch.update(source.next_vector())
            waves = simulator.run_cycle(launch, placement, state)
            for name in flops:
                wave = waves[f"{name}::d"]
                if wave.final != wave.value_at(scheme.window_close):
                    diverged = True
                settled[name] = wave.final
        return settled, state, diverged

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_next_cycle_state_is_settled_value(self, tight_circuit, backend):
        cycles, seed = 8, 3
        settled, latch_state, diverged = self._reference_states(
            tight_circuit, cycles, seed
        )
        # Guard: the scenario must actually exercise the divergence,
        # otherwise this test could pass against the old sampling code.
        assert diverged
        endpoints = {g.name for g in tight_circuit.netlist.endpoints()}
        report = estimate_error_rate(
            tight_circuit,
            SlavePlacement.initial(),
            endpoints,
            cycles=cycles,
            seed=seed,
            backend=backend,
        )
        assert report.final_flop_state == settled
        assert report.final_latch_state == latch_state

    def test_unknown_backend_rejected(self, tight_circuit):
        with pytest.raises(ValueError, match="backend"):
            estimate_error_rate(
                tight_circuit, SlavePlacement.initial(), set(),
                cycles=1, backend="quantum",
            )


class TestMinDelayDiagnostics:
    """Malformed netlists must produce a :class:`TimingError` naming
    the gate, not a bare ``min()``/``KeyError`` crash."""

    def test_comb_gate_without_fanins(self, library):
        netlist = _tiny_netlist(library)
        object.__setattr__(netlist["g2"], "fanins", ())
        analysis = MinDelayAnalysis(netlist, library)
        with pytest.raises(TimingError, match="g2"):
            analysis.min_endpoint_arrival("y")

    def test_comb_gate_reading_an_endpoint(self, library):
        """A fanin outside the combinational cloud (here: the PO
        ``y``) has no min arrival; the old DP died with a KeyError."""
        netlist = _tiny_netlist(library)
        object.__setattr__(netlist["g1"], "fanins", ("a", "y"))
        analysis = MinDelayAnalysis(netlist, library)
        with pytest.raises(TimingError, match="g1"):
            analysis.min_endpoint_arrival("y")

    def test_endpoint_without_fanins(self, library):
        netlist = _tiny_netlist(library)
        object.__setattr__(netlist["y"], "fanins", ())
        analysis = MinDelayAnalysis(netlist, library)
        with pytest.raises(TimingError, match="y"):
            analysis.min_endpoint_arrival("y")


class TestEndpointWithoutFanins:
    """Both simulation backends must reject an endpoint with no data
    input with a :class:`NetlistError` naming it."""

    @pytest.fixture()
    def corrupted_circuit(self, library):
        netlist = _tiny_netlist(library)
        _, circuit = prepare_circuit(netlist, library)
        # Corrupt *after* preparation: prepare_circuit's own STA
        # already rejects the malformed netlist up front.
        object.__setattr__(circuit.netlist["y"], "fanins", ())
        return circuit

    def test_event_backend(self, corrupted_circuit):
        simulator = TimedSimulator(corrupted_circuit)
        launch = {
            g.name: 1 for g in corrupted_circuit.netlist.sources()
        }
        with pytest.raises(NetlistError, match="y"):
            simulator.run_cycle(launch, SlavePlacement.initial(), {})

    def test_compiled_backend_rejects_at_compile_time(
        self, corrupted_circuit
    ):
        with pytest.raises(NetlistError, match="y"):
            CompiledSimulator(corrupted_circuit, SlavePlacement.initial())


class TestBackendParity:
    """The compiled kernel's acceptance gate: bit-identical reports.

    ``ErrorRateReport.__eq__`` covers ``cycles``, ``error_cycles``,
    ``per_endpoint``, ``non_edl_violations`` and the final flop/latch
    state (``backend`` and ``cycles_per_sec`` are excluded from
    comparison by construction).
    """

    def _compare(self, circuit, placement, edl, cycles, seed):
        event = estimate_error_rate(
            circuit, placement, edl, cycles=cycles, seed=seed,
            backend="event",
        )
        compiled = estimate_error_rate(
            circuit, placement, edl, cycles=cycles, seed=seed,
            backend="compiled",
        )
        assert event.backend == "event"
        assert compiled.backend == "compiled"
        assert compiled == event
        # Equality spelled out, so a future compare=False regression
        # on a field cannot silently weaken this gate.
        assert compiled.error_cycles == event.error_cycles
        assert compiled.per_endpoint == event.per_endpoint
        assert compiled.non_edl_violations == event.non_edl_violations
        assert compiled.final_flop_state == event.final_flop_state
        assert compiled.final_latch_state == event.final_latch_state

    def test_parity_initial_placement(self, small_prepared):
        _, circuit = small_prepared
        placement = SlavePlacement.initial()
        edl = circuit.edl_endpoints(placement)
        self._compare(circuit, placement, edl, cycles=48, seed=2017)

    def test_parity_retimed_placement(self, small_prepared):
        _, circuit = small_prepared
        result = base_retime(circuit, overhead=1.0)
        edl = circuit.edl_endpoints(result.placement)
        self._compare(circuit, result.placement, edl, cycles=48, seed=11)

    def test_parity_suite_circuit_grar(self, s1196, library):
        """An EDL placement from the paper's own flow on a suite
        circuit — the configuration Table VIII actually measures."""
        outcome = run_flow("grar", s1196.copy(), library, overhead=1.0)
        self._compare(
            outcome.circuit,
            outcome.retiming.placement,
            outcome.edl_endpoints,
            cycles=24,
            seed=7,
        )

    def test_lockstep_waveforms_and_state(self, small_prepared):
        """Stronger than report parity: per cycle, every endpoint
        waveform and the whole latch-state dict must match exactly."""
        _, circuit = small_prepared
        result = base_retime(circuit, overhead=1.0)
        placement = result.placement
        netlist = circuit.netlist
        simulator = TimedSimulator(circuit)
        kernel = CompiledSimulator(circuit, placement)
        source = VectorSource(
            [g.name for g in netlist.inputs()], seed=23
        )
        endpoint_keys = [
            f"{g.name}::d" if g.is_flop else g.name
            for g in netlist.endpoints()
        ]
        flops = [g.name for g in netlist.flops()]
        state_ev, state_co = {}, {}
        flop_values = {name: 0 for name in flops}
        for _ in range(12):
            launch = dict(flop_values)
            launch.update(source.next_vector())
            waves_ev = simulator.run_cycle(launch, placement, state_ev)
            waves_co = kernel.run_cycle(launch, state_co)
            for key in endpoint_keys:
                ev, co = waves_ev[key], waves_co[key]
                assert co.initial == ev.initial, key
                assert co.events == ev.events, key
            assert state_co == state_ev
            for name in flops:
                flop_values[name] = waves_ev[f"{name}::d"].final


# -- randomized invariants of the waveform primitives ----------------------

_times = st.floats(
    min_value=0.0, max_value=10.0,
    allow_nan=False, allow_infinity=False,
)
_events = st.lists(
    st.tuples(_times, st.integers(min_value=0, max_value=1)),
    max_size=30,
)
#: Arbitrary order, but one event per time — the precondition under
#: which ``normalized()`` promises a strictly increasing output.
_unique_time_events = st.lists(
    st.tuples(_times, st.integers(min_value=0, max_value=1)),
    max_size=30,
    unique_by=lambda event: event[0],
)


@st.composite
def _sorted_unique_events(draw):
    times = sorted(draw(st.lists(_times, unique=True, max_size=20)))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=len(times), max_size=len(times),
        )
    )
    return list(zip(times, values))


class TestWaveformInvariants:
    """Hypothesis checks of the primitives both backends rely on."""

    @settings(max_examples=200, deadline=None)
    @given(
        initial=st.integers(min_value=0, max_value=1),
        events=_unique_time_events,
    )
    def test_normalized_is_minimal_and_alternating(self, initial, events):
        wave = Waveform(initial=initial, events=list(events))
        norm = wave.normalized()
        assert norm.initial == initial
        times = [t for t, _ in norm.events]
        assert times == sorted(times)
        assert len(set(times)) == len(times)  # strictly increasing
        value = initial
        for _, new_value in norm.events:
            assert new_value != value  # every event is a real change
            value = new_value
        # Idempotent: normalizing again changes nothing.
        again = norm.normalized()
        assert again.initial == norm.initial
        assert again.events == norm.events

    @settings(max_examples=200, deadline=None)
    @given(
        initial=st.integers(min_value=0, max_value=1),
        events=_sorted_unique_events(),
    )
    def test_normalized_preserves_semantics(self, initial, events):
        """For a well-formed (sorted, unique-time) event list, pruning
        null events must not change the signal anywhere."""
        wave = Waveform(initial=initial, events=list(events))
        norm = wave.normalized()
        assert norm.final == wave.final
        queries = [-1.0, 11.0]
        for when, _ in events:
            queries.extend((when - 1e-9, when, when + 1e-9))
        for when in queries:
            assert norm.value_at(when) == wave.value_at(when), when
        assert norm.transition_times() == wave.transition_times()

    @settings(max_examples=200, deadline=None)
    @given(schedule=_events)
    def test_append_preempt_keeps_strict_order(self, schedule):
        events = []
        for when, value in schedule:
            _append_preempt(events, when, value)
            assert events[-1] == (when, value)  # newest always lands
            times = [t for t, _ in events]
            assert all(a < b for a, b in zip(times, times[1:]))
        # Every surviving event predates the final appended time.
        if schedule:
            last_when = schedule[-1][0]
            assert all(t <= last_when for t, _ in events)
