"""Functional tests for the structured datapath generators.

Each block is simulated exhaustively (or on dense samples) against its
arithmetic definition.
"""

import pytest

from repro.circuits.datapath import (
    alu,
    decoder,
    full_adder,
    incrementer,
    logic_unit,
    mux2_word,
    mux_tree,
    ripple_adder,
    shifter,
)
from repro.netlist import NetlistBuilder, validate


def simulate(netlist, library, inputs):
    """Evaluate the combinational cloud for a PI assignment."""
    values = dict(inputs)
    for name in netlist.topo_order():
        gate = netlist[name]
        if gate.is_comb:
            cell = library[gate.cell]
            values[name] = cell.evaluate(
                [values[f] for f in gate.fanins]
            )
        elif gate.gtype.value == "output":
            values[name] = values[gate.fanins[0]]
    return values


def bits_of(value, width):
    return [(value >> k) & 1 for k in range(width)]


def value_of(values, names):
    return sum(values[name] << k for k, name in enumerate(names))


class TestAdders:
    def test_full_adder_exhaustive(self, library):
        builder = NetlistBuilder("fa", library)
        a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
        s, co = full_adder(builder, "fa", a, b, c)
        builder.output("s", s)
        builder.output("co", co)
        netlist = builder.build()
        for pattern in range(8):
            xa, xb, xc = bits_of(pattern, 3)
            values = simulate(netlist, library, {"a": xa, "b": xb, "c": xc})
            assert values[s] == (xa + xb + xc) & 1
            assert values[co] == int(xa + xb + xc >= 2)

    @pytest.mark.parametrize("width", [1, 4])
    def test_ripple_adder(self, library, width):
        builder = NetlistBuilder("add", library)
        a_bits = [builder.input(f"a{k}") for k in range(width)]
        b_bits = [builder.input(f"b{k}") for k in range(width)]
        sums, cout = ripple_adder(builder, "add", a_bits, b_bits)
        for k, s in enumerate(sums):
            builder.output(f"s{k}", s)
        builder.output("co", cout)
        netlist = builder.build()
        validate(netlist, library)
        for a in range(2 ** width):
            for b in range(2 ** width):
                inputs = {}
                for k, bit in enumerate(bits_of(a, width)):
                    inputs[f"a{k}"] = bit
                for k, bit in enumerate(bits_of(b, width)):
                    inputs[f"b{k}"] = bit
                values = simulate(netlist, library, inputs)
                total = value_of(values, sums) + (values[cout] << width)
                assert total == a + b, (a, b)

    def test_adder_width_mismatch(self, library):
        builder = NetlistBuilder("bad", library)
        a = [builder.input("a0")]
        b = [builder.input("b0"), builder.input("b1")]
        with pytest.raises(ValueError):
            ripple_adder(builder, "x", a, b)

    def test_incrementer(self, library):
        width = 4
        builder = NetlistBuilder("inc", library)
        bits = [builder.input(f"a{k}") for k in range(width)]
        out = incrementer(builder, "inc", bits)
        for k, s in enumerate(out):
            builder.output(f"s{k}", s)
        netlist = builder.build()
        for a in range(16):
            inputs = {f"a{k}": bit for k, bit in enumerate(bits_of(a, width))}
            values = simulate(netlist, library, inputs)
            assert value_of(values, out) == (a + 1) % 16


class TestMuxes:
    def test_mux_tree_4to1(self, library):
        builder = NetlistBuilder("mux", library)
        words = []
        for w in range(4):
            words.append([builder.input(f"w{w}b{k}") for k in range(2)])
        sels = [builder.input("s0"), builder.input("s1")]
        out = mux_tree(builder, "m", words, sels)
        for k, bit in enumerate(out):
            builder.output(f"o{k}", bit)
        netlist = builder.build()
        for sel in range(4):
            inputs = {f"w{w}b{k}": (w >> k) & 1 for w in range(4) for k in range(2)}
            inputs["s0"] = sel & 1
            inputs["s1"] = (sel >> 1) & 1
            values = simulate(netlist, library, inputs)
            assert value_of(values, out) == sel

    def test_mux_tree_size_check(self, library):
        builder = NetlistBuilder("bad", library)
        words = [[builder.input(f"w{w}")] for w in range(3)]
        sels = [builder.input("s0"), builder.input("s1")]
        with pytest.raises(ValueError):
            mux_tree(builder, "m", words, sels)

    def test_decoder_one_hot(self, library):
        builder = NetlistBuilder("dec", library)
        sels = [builder.input(f"s{k}") for k in range(3)]
        outs = decoder(builder, "d", sels)
        for k, o in enumerate(outs):
            builder.output(f"o{k}", o)
        netlist = builder.build()
        for code in range(8):
            inputs = {f"s{k}": (code >> k) & 1 for k in range(3)}
            values = simulate(netlist, library, inputs)
            pattern = [values[o] for o in outs]
            assert sum(pattern) == 1
            assert pattern.index(1) == code


class TestAluShifter:
    def test_logic_unit_ops(self, library):
        width = 3
        builder = NetlistBuilder("lu", library)
        a_bits = [builder.input(f"a{k}") for k in range(width)]
        b_bits = [builder.input(f"b{k}") for k in range(width)]
        op0, op1 = builder.input("op0"), builder.input("op1")
        out = logic_unit(builder, "lu", a_bits, b_bits, op0, op1)
        for k, bit in enumerate(out):
            builder.output(f"o{k}", bit)
        netlist = builder.build()
        a, b = 0b101, 0b011
        expected = {
            (0, 0): a & b, (1, 0): a | b, (0, 1): a ^ b, (1, 1): a,
        }
        for (o0, o1), want in expected.items():
            inputs = {f"a{k}": (a >> k) & 1 for k in range(width)}
            inputs.update({f"b{k}": (b >> k) & 1 for k in range(width)})
            inputs.update({"op0": o0, "op1": o1})
            values = simulate(netlist, library, inputs)
            assert value_of(values, out) == want, (o0, o1)

    def test_alu_add_mode(self, library):
        width = 4
        builder = NetlistBuilder("alu", library)
        a_bits = [builder.input(f"a{k}") for k in range(width)]
        b_bits = [builder.input(f"b{k}") for k in range(width)]
        ops = [builder.input(f"op{k}") for k in range(3)]
        out = alu(builder, "alu", a_bits, b_bits, ops)
        for k, bit in enumerate(out):
            builder.output(f"o{k}", bit)
        netlist = builder.build()
        for a, b in ((3, 5), (9, 9), (15, 1)):
            inputs = {f"a{k}": (a >> k) & 1 for k in range(width)}
            inputs.update({f"b{k}": (b >> k) & 1 for k in range(width)})
            inputs.update({"op0": 0, "op1": 0, "op2": 1})  # arithmetic
            values = simulate(netlist, library, inputs)
            assert value_of(values, out) == (a + b) % 16

    def test_alu_needs_three_ops(self, library):
        builder = NetlistBuilder("bad", library)
        a = [builder.input("a0")]
        b = [builder.input("b0")]
        with pytest.raises(ValueError):
            alu(builder, "x", a, b, [builder.input("op0")])

    def test_shifter(self, library):
        width = 4
        builder = NetlistBuilder("sh", library)
        bits = [builder.input(f"a{k}") for k in range(width)]
        amounts = [builder.input(f"n{k}") for k in range(2)]
        out = shifter(builder, "sh", bits, amounts)
        for k, bit in enumerate(out):
            builder.output(f"o{k}", bit)
        netlist = builder.build()
        for value in (0b0001, 0b1011):
            for shift in range(4):
                inputs = {f"a{k}": (value >> k) & 1 for k in range(width)}
                inputs["n0"] = shift & 1
                inputs["n1"] = (shift >> 1) & 1
                values = simulate(netlist, library, inputs)
                assert value_of(values, out) == (value << shift) % 16


class TestPlasma:
    def test_builds_with_paper_flop_count(self, library):
        from repro.circuits.plasma import build_plasma

        netlist = build_plasma(library)
        validate(netlist, library)
        assert len(netlist.flops()) == 1652  # Table I

    def test_register_file_dominates_state(self, library):
        from repro.circuits.plasma import REGS, WIDTH, build_plasma

        netlist = build_plasma(library)
        rf_flops = [
            g for g in netlist.flops() if g.name.startswith("rf_")
        ]
        assert len(rf_flops) == REGS * WIDTH
