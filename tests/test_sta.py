"""Tests for the static-timing substrate."""

import math

import pytest

from repro.sta import (
    FixedDelayCalculator,
    GateBasedCalculator,
    PathBasedCalculator,
    LoadModel,
    TimingEngine,
    make_calculator,
    worst_path,
)
from repro.sta.engine import NEG_INF
from repro.sta.paths import critical_paths
from repro.circuits.fig4 import FIG4_DELAYS, fig4_netlist


class TestLoadModel:
    def test_net_load_counts_pins_and_wires(self, tiny_netlist, library):
        model = LoadModel(wire_cap_per_fanout=0.4)
        # 'a' drives g1 pin A (NAND2) and g4 pin A/B (AND2).
        load = model.net_load(tiny_netlist, library, "a")
        nand = library[tiny_netlist["g1"].cell]
        and2 = library[tiny_netlist["g4"].cell]
        expected = 0.4 + nand.pin_cap("A") + 0.4 + and2.pin_cap("B")
        assert load == pytest.approx(expected)

    def test_same_driver_two_pins(self, library):
        from repro.netlist import Netlist, Gate, GateType

        netlist = Netlist("dp")
        netlist.add(Gate("a", GateType.INPUT))
        netlist.add(
            Gate("g", GateType.COMB, ("a", "a"), cell="NAND2_X1")
        )
        netlist.add(Gate("y", GateType.OUTPUT, ("g",)))
        model = LoadModel(wire_cap_per_fanout=0.0)
        cell = library["NAND2_X1"]
        assert model.net_load(netlist, library, "a") == pytest.approx(
            cell.pin_cap("A") + cell.pin_cap("B")
        )

    def test_flop_load_uses_cell_cap(self, tiny_netlist, library):
        model = LoadModel(wire_cap_per_fanout=0.0)
        load = model.net_load(tiny_netlist, library, "g3")
        assert load == pytest.approx(library["DFF_X1"].input_cap)

    def test_output_pad_cap(self, tiny_netlist, library):
        model = LoadModel(wire_cap_per_fanout=0.0, output_pin_cap=2.5)
        assert model.net_load(tiny_netlist, library, "g4") == pytest.approx(2.5)


class TestCalculators:
    def test_gate_model_is_pessimistic(self, tiny_netlist, library):
        gate = GateBasedCalculator(tiny_netlist, library)
        path = PathBasedCalculator(tiny_netlist, library)
        for driver, sink in (("a", "g1"), ("g1", "g2"), ("g2", "g3")):
            assert gate.edge_delay(driver, sink) >= path.edge_delay(
                driver, sink
            )

    def test_gate_model_ignores_load(self, tiny_netlist, library):
        gate = GateBasedCalculator(tiny_netlist, library)
        d1 = gate.edge_delay("g1", "g2")
        dup = tiny_netlist.copy()
        dup.replace_cell("g3", "INV_X4")  # heavier load on g2
        gate2 = GateBasedCalculator(dup, library)
        assert gate2.edge_delay("g1", "g2") == pytest.approx(d1)

    def test_path_model_sees_load(self, tiny_netlist, library):
        path = PathBasedCalculator(tiny_netlist, library)
        d1 = path.edge_delay("g1", "g2")
        dup = tiny_netlist.copy()
        dup.replace_cell("g3", "INV_X4")
        path2 = PathBasedCalculator(dup, library)
        assert path2.edge_delay("g1", "g2") > d1

    def test_transition_edges_unate(self, tiny_netlist, library):
        calc = PathBasedCalculator(tiny_netlist, library)
        # INV (g3) is negative-unate: rise pairs with fall.
        triples = calc.transition_edges("g2", "g3")
        pairs = {(i, o) for i, o, _ in triples}
        assert pairs == {(True, False), (False, True)}

    def test_transition_edges_nonunate_xor(self, tiny_netlist, library):
        calc = PathBasedCalculator(tiny_netlist, library)
        triples = calc.transition_edges("g1", "g2")
        assert len(triples) == 4

    def test_edge_delay_requires_connection(self, tiny_netlist, library):
        calc = PathBasedCalculator(tiny_netlist, library)
        with pytest.raises(KeyError):
            calc.edge_delay("a", "g3")

    def test_invalidate_refreshes(self, tiny_netlist, library):
        dup = tiny_netlist.copy()
        calc = PathBasedCalculator(dup, library)
        before = calc.edge_delay("g2", "g3")
        dup.replace_cell("g3", "INV_LVT_X1")
        calc.invalidate()
        assert calc.edge_delay("g2", "g3") < before

    def test_factory(self, tiny_netlist, library):
        assert make_calculator("gate", tiny_netlist, library).name == "gate"
        assert make_calculator("path", tiny_netlist, library).name == "path"
        with pytest.raises(ValueError):
            make_calculator("magic", tiny_netlist, library)


class TestFixedDelays:
    def test_fig4_forward_arrivals_match_paper(self):
        """The published D^f column of Fig. 4."""
        netlist = fig4_netlist()
        engine = TimingEngine(
            netlist, None,
            calculator=FixedDelayCalculator(netlist, FIG4_DELAYS),
        )
        expected = {
            "I1": 0, "I2": 0, "G3": 2, "G4": 3,
            "G5": 5, "G6": 7, "G7": 8, "G8": 9,
        }
        for gate, value in expected.items():
            assert engine.forward_arrival(gate) == pytest.approx(value)
        assert engine.endpoint_arrival("O9") == pytest.approx(9)
        assert engine.endpoint_arrival("O10") == pytest.approx(3)

    def test_fig4_backward_delays_match_paper(self):
        """The published D^b(., O9) column of Fig. 4."""
        netlist = fig4_netlist()
        engine = TimingEngine(
            netlist, None,
            calculator=FixedDelayCalculator(netlist, FIG4_DELAYS),
        )
        expected = {
            "I1": 9, "I2": 7, "G3": 7, "G5": 2,
            "G6": 2, "G7": 1, "G8": 0,
        }
        for gate, value in expected.items():
            assert engine.backward_delay(gate, "O9") == pytest.approx(value)
        # G4 has no path to O9.
        assert engine.backward_delay("G4", "O9") == NEG_INF

    def test_max_backward_over_endpoints(self):
        netlist = fig4_netlist()
        engine = TimingEngine(
            netlist, None,
            calculator=FixedDelayCalculator(netlist, FIG4_DELAYS),
        )
        # I2 reaches O9 (7) and O10 (via G5? no - via G4: d(G4)=1).
        assert engine.max_backward("I2") == pytest.approx(7)
        assert engine.max_backward("G4") == pytest.approx(0)


class TestEngine:
    def test_endpoint_arrival_requires_endpoint(self, tiny_netlist, library):
        engine = TimingEngine(tiny_netlist, library)
        with pytest.raises(ValueError):
            engine.endpoint_arrival("g1")

    def test_rise_fall_dp_never_pessimistic(self, small_netlist, library):
        """The two-state DP prunes invalid rise/fall pairings, so its
        arrivals are bounded by a scalar max-delay DP."""
        engine = TimingEngine(small_netlist, library, model="path")
        calc = engine.calculator
        scalar = {}
        for name in small_netlist.topo_order():
            gate = small_netlist[name]
            if gate.is_source:
                scalar[name] = 0.0
            elif gate.gtype.value == "output":
                continue
            else:
                scalar[name] = max(
                    scalar[d] + calc.edge_delay(d, name)
                    for d in gate.fanins
                )
        for name, bound in scalar.items():
            assert engine.forward_arrival(name) <= bound + 1e-9

    def test_worst_arrival_and_violations(self, small_prepared):
        scheme, circuit = small_prepared
        engine = circuit.engine
        worst = engine.worst_arrival()
        assert worst > 0
        assert engine.violations(worst) == {}
        assert len(engine.violations(0.0)) == len(engine.endpoints())

    def test_near_critical_endpoints(self, small_prepared):
        scheme, circuit = small_prepared
        engine = circuit.engine
        nce = engine.near_critical_endpoints(scheme.window_open)
        arrivals = engine.endpoint_arrivals()
        expected = {
            n for n, a in arrivals.items() if a > scheme.window_open + 1e-12
        }
        assert set(nce) == expected

    def test_invalidate_after_sizing(self, tiny_netlist, library):
        dup = tiny_netlist.copy()
        engine = TimingEngine(dup, library)
        before = engine.endpoint_arrival("f1")
        dup.replace_cell("g2", "XOR2_LVT_X1")
        engine.invalidate()
        assert engine.endpoint_arrival("f1") < before

    def test_backward_consistency(self, small_netlist, library):
        """max over endpoints of D^b(v, t) equals max_backward(v)."""
        engine = TimingEngine(small_netlist, library)
        endpoints = [g.name for g in small_netlist.endpoints()]
        for name in list(small_netlist.gates)[:40]:
            gate = small_netlist[name]
            if gate.gtype.value == "output":
                continue
            per_endpoint = max(
                (engine.backward_delay(name, t) for t in endpoints),
                default=NEG_INF,
            )
            assert engine.max_backward(name) == pytest.approx(
                per_endpoint
            ) or (
                engine.max_backward(name) == NEG_INF
                and per_endpoint == NEG_INF
            )


class TestPaths:
    def test_worst_path_arrival_consistent(self, small_prepared):
        _, circuit = small_prepared
        engine = circuit.engine
        arrivals = engine.endpoint_arrivals()
        endpoint = max(arrivals, key=arrivals.get)
        path = worst_path(engine, endpoint)
        assert path.endpoint == endpoint
        assert path.arrival == pytest.approx(arrivals[endpoint])
        assert circuit.netlist[path.startpoint].is_source

    def test_path_is_connected(self, small_prepared):
        _, circuit = small_prepared
        engine = circuit.engine
        endpoint = engine.endpoints()[0].name
        path = worst_path(engine, endpoint)
        for driver, sink in zip(path.gates, path.gates[1:]):
            assert driver in circuit.netlist[sink].fanins

    def test_critical_paths_sorted(self, small_prepared):
        _, circuit = small_prepared
        paths = critical_paths(circuit.engine, count=4)
        arrivals = [p.arrival for p in paths]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_pretty_render(self, small_prepared):
        _, circuit = small_prepared
        engine = circuit.engine
        endpoint = engine.endpoints()[0].name
        text = worst_path(engine, endpoint).pretty(engine)
        assert endpoint in text
