"""Incremental STA: change events, cone-scoped repair, and parity.

The contract under test is strict: for any sequence of netlist
mutations, an incremental engine's arrivals, backward delays and
violation sets must be *bit-identical* to a full recompute (the
``incremental=False`` parity oracle) — and the repair must actually be
scoped (a local change must not recompute the whole netlist).
"""

import math
import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import metrics
from repro.cells import default_library
from repro.circuits.generator import CloudSpec, generate_circuit
from repro.flows import run_flow
from repro.netlist import (
    CellSwapped,
    ChangeLog,
    FaninRewired,
    Gate,
    GateAdded,
    GateRemoved,
    GateType,
)
from repro.sta import TimingEngine
from repro.sta.engine import NEG_INF
from repro.sta.min_delay import MinDelayAnalysis
from repro.synth.sizing import TrialMoves

LIBRARY = default_library()


def _generated(seed, gates=60, flops=6):
    spec = CloudSpec(
        name=f"inc{seed}",
        seed=seed,
        n_inputs=4,
        n_outputs=3,
        n_flops=flops,
        n_gates=gates,
        depth=5,
        critical_fraction=0.3,
    )
    return generate_circuit(spec, LIBRARY)


def _same_float(a, b):
    return a == b or (a != a and b != b)  # NaN-tolerant exact equality


# -- event layer ------------------------------------------------------------


class TestChangeEvents:
    def test_replace_cell_emits_cell_swapped(self, tiny_netlist):
        netlist = tiny_netlist.copy()
        log = ChangeLog()
        netlist.subscribe(log)
        old = netlist["g1"].cell
        netlist.replace_cell("g1", "NAND2_X2")
        assert len(log) == 1
        event = log.events[0]
        assert isinstance(event, CellSwapped)
        assert event.gate == "g1"
        assert event.old_cell == old
        assert event.new_cell == "NAND2_X2"
        assert not event.structural
        # Dirty set: the gate's own arcs plus its drivers' loads.
        assert event.dirty_gates(netlist) == {"g1", "a", "b"}

    def test_rewire_fanin_preserves_gate_fields(self, library):
        # Satellite regression: rewire_fanin used to rebuild the gate
        # positionally, which could scramble the non-fanin fields; it
        # must behave exactly like with_cell's dataclasses.replace.
        netlist = _generated(3)
        log = ChangeLog()
        netlist.subscribe(log)
        sink = next(g for g in netlist.comb_gates() if len(g.fanins) >= 2)
        old_driver = sink.fanins[0]
        buf_cell = library.pick_comb("BUF", 1).name
        netlist.add(Gate("buf0", GateType.COMB, (old_driver,), cell=buf_cell))
        netlist.rewire_fanin(sink.name, old_driver, "buf0")
        rebuilt = netlist[sink.name]
        assert rebuilt.cell == sink.cell
        assert rebuilt.gtype == sink.gtype
        assert rebuilt.fanins == tuple(
            "buf0" if f == old_driver else f for f in sink.fanins
        )
        assert isinstance(log.events[-2], GateAdded)
        rewired = log.events[-1]
        assert isinstance(rewired, FaninRewired)
        assert rewired.dirty_gates(netlist) == {
            sink.name, old_driver, "buf0"
        }

    def test_remove_records_surviving_fanins(self, library):
        netlist = _generated(4)
        log = ChangeLog()
        netlist.subscribe(log)
        sink = next(g for g in netlist.comb_gates() if len(g.fanins) >= 1)
        driver = sink.fanins[0]
        buf_cell = library.pick_comb("BUF", 1).name
        netlist.add(Gate("buf1", GateType.COMB, (driver,), cell=buf_cell))
        netlist.rewire_fanin(sink.name, driver, "buf1")
        netlist.rewire_fanin(sink.name, "buf1", driver)
        netlist.remove("buf1")
        event = log.events[-1]
        assert isinstance(event, GateRemoved)
        assert event.removed_gates() == ("buf1",)
        # The buffer's driver survives and its load shrank.
        assert event.dirty_gates(netlist) == {driver}

    def test_remove_many_batches_into_one_event(self, library):
        netlist = _generated(5)
        log = ChangeLog()
        netlist.subscribe(log)
        sink = next(g for g in netlist.comb_gates() if len(g.fanins) >= 1)
        driver = sink.fanins[0]
        buf_cell = library.pick_comb("BUF", 1).name
        netlist.add(Gate("b_a", GateType.COMB, (driver,), cell=buf_cell))
        netlist.add(Gate("b_b", GateType.COMB, ("b_a",), cell=buf_cell))
        log.clear()
        netlist.remove_many(["b_a", "b_b"])
        assert len(log) == 1
        event = log.events[0]
        assert isinstance(event, GateRemoved)
        assert set(event.removed_gates()) == {"b_a", "b_b"}
        assert event.dirty_gates(netlist) == {driver}

    def test_subscriber_protocol_is_checked(self, tiny_netlist):
        with pytest.raises(TypeError):
            tiny_netlist.copy().subscribe(object())

    def test_subscribers_are_weak_and_unsubscribable(self, tiny_netlist):
        netlist = tiny_netlist.copy()
        log = ChangeLog()
        netlist.subscribe(log)
        netlist.subscribe(log)  # deduplicated
        netlist.replace_cell("g1", "NAND2_X2")
        assert len(log) == 1
        netlist.unsubscribe(log)
        netlist.replace_cell("g1", "NAND2_X1")
        assert len(log) == 1
        gone = ChangeLog()
        netlist.subscribe(gone)
        del gone  # weakref: dead subscribers must not break emission
        netlist.replace_cell("g1", "NAND2_X2")

    def test_netlist_pickles_without_subscribers(self, library, tiny_netlist):
        netlist = tiny_netlist.copy()
        engine = TimingEngine(netlist, library)
        engine.forward_arrival("g3")
        clone = pickle.loads(pickle.dumps(netlist))
        assert clone._subscribers == []
        # The clone is fully functional (the parallel-worker path).
        clone.replace_cell("g1", "NAND2_X2")
        fresh = TimingEngine(clone, library)
        assert math.isfinite(fresh.forward_arrival("g3"))

    def test_copies_do_not_share_subscribers(self, tiny_netlist):
        netlist = tiny_netlist.copy()
        log = ChangeLog()
        netlist.subscribe(log)
        dup = netlist.copy()
        dup.replace_cell("g1", "NAND2_X2")
        assert len(log) == 0


# -- parity: incremental vs full oracle -------------------------------------


def _assert_engine_parity(netlist, inc, full):
    limit = None
    for name in netlist.topo_order():
        if netlist[name].gtype is GateType.OUTPUT:
            continue
        a = inc.forward_arrival(name)
        b = full.forward_arrival(name)
        assert _same_float(a, b), f"forward mismatch at {name}: {a} != {b}"
        if limit is None or (b == b and b > limit):
            limit = b
    endpoints = [g.name for g in netlist.endpoints()]
    probes = [
        g.name for g in netlist
        if g.gtype is not GateType.OUTPUT
    ][:: max(1, len(netlist) // 10)]
    for endpoint in endpoints:
        for name in probes:
            a = inc.backward_delay(name, endpoint)
            b = full.backward_delay(name, endpoint)
            assert _same_float(a, b), (
                f"backward mismatch {name}->{endpoint}: {a} != {b}"
            )
        assert _same_float(inc.max_backward(endpoint),
                           full.max_backward(endpoint))
        assert _same_float(inc.endpoint_arrival(endpoint),
                           full.endpoint_arrival(endpoint))
    threshold = (limit or 1.0) * 0.8
    assert inc.violations(threshold) == full.violations(threshold)


def _apply_op(netlist, op, seed, buffers, counter):
    """One random mutation; returns the updated buffer-name list."""
    comb = netlist.comb_gates()
    if not comb:
        return counter
    pick = comb[seed % len(comb)]
    if op == "swap":
        cell = LIBRARY[pick.cell]
        candidate = LIBRARY.next_drive_up(cell) or LIBRARY.vt_variant(
            cell, "lvt"
        )
        if candidate is not None and candidate.name != pick.cell:
            netlist.replace_cell(pick.name, candidate.name)
    elif op == "buffer":
        driver = pick.fanins[seed % len(pick.fanins)]
        name = f"pbuf{counter}"
        counter += 1
        buf_cell = LIBRARY.pick_comb("BUF", 1).name
        netlist.add(Gate(name, GateType.COMB, (driver,), cell=buf_cell))
        netlist.rewire_fanin(pick.name, driver, name)
        buffers.append((name, driver, pick.name))
    elif op == "unbuffer" and buffers:
        name, driver, sink = buffers.pop(seed % len(buffers))
        if sink in netlist and name in netlist[sink].fanins:
            netlist.rewire_fanin(sink, name, driver)
        if name in netlist and not netlist.fanouts(name):
            netlist.remove(name)
    return counter


class TestMutationParity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 30),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["swap", "buffer", "unbuffer"]),
                st.integers(0, 10**6),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    def test_random_mutations_bit_identical(self, seed, ops):
        netlist = _generated(seed)
        inc = TimingEngine(netlist, LIBRARY, incremental=True)
        full = TimingEngine(netlist, LIBRARY, incremental=False)
        _assert_engine_parity(netlist, inc, full)
        buffers, counter = [], 0
        for index, (op, pick) in enumerate(ops):
            counter = _apply_op(netlist, op, pick, buffers, counter)
            # Compare mid-sequence every few ops and always at the end,
            # so both freshly-flushed and batched event paths are hit.
            if index % 3 == 0 or index == len(ops) - 1:
                _assert_engine_parity(netlist, inc, full)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 20),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["swap", "buffer", "unbuffer"]),
                st.integers(0, 10**6),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_min_delay_repair_matches_fresh_analysis(self, seed, ops):
        netlist = _generated(seed, gates=50)
        analysis = MinDelayAnalysis(netlist, LIBRARY)
        endpoints = [g.name for g in netlist.endpoints()]
        analysis.min_endpoint_arrival(endpoints[0])  # warm the caches
        buffers, counter = [], 0
        for op, pick in ops:
            counter = _apply_op(netlist, op, pick, buffers, counter)
        oracle = MinDelayAnalysis(netlist, LIBRARY)
        for name in netlist.topo_order():
            if netlist[name].gtype is GateType.OUTPUT:
                continue
            assert _same_float(
                analysis.min_arrival(name), oracle.min_arrival(name)
            )

    def test_gate_model_parity_after_swaps(self):
        netlist = _generated(9)
        inc = TimingEngine(netlist, LIBRARY, model="gate", incremental=True)
        full = TimingEngine(netlist, LIBRARY, model="gate", incremental=False)
        _assert_engine_parity(netlist, inc, full)
        buffers, counter = [], 0
        for index in range(6):
            counter = _apply_op(
                netlist, ("swap", "buffer")[index % 2], index * 37,
                buffers, counter,
            )
        _assert_engine_parity(netlist, inc, full)


# -- scoping and counters ----------------------------------------------------


class TestScopedRepair:
    def test_local_swap_repairs_a_strict_subset(self):
        netlist = _generated(11, gates=120, flops=10)
        engine = TimingEngine(netlist, LIBRARY, incremental=True)
        engine.worst_arrival()  # warm
        total = sum(
            1 for g in netlist if g.gtype is not GateType.OUTPUT
        )
        gate = netlist.comb_gates()[0]
        cell = LIBRARY[gate.cell]
        candidate = LIBRARY.next_drive_up(cell) or LIBRARY.vt_variant(
            cell, "lvt"
        )
        assert candidate is not None
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            netlist.replace_cell(gate.name, candidate.name)
            engine.worst_arrival()
        assert collector.counters["sta.incremental.events"] == 1
        recomputed = collector.counters["sta.incremental.nodes_recomputed"]
        assert 0 < recomputed < total
        # And no full forward recompute happened.
        assert collector.counters.get("sta.full_recompute", 0) == 0

    def test_rejected_trial_move_never_full_recomputes(self):
        # Satellite regression: a rejected + undone sizing move used to
        # cost two whole-engine invalidations; with events it must cost
        # two cone repairs and zero full recomputes.
        netlist = _generated(12, gates=100, flops=8)
        engine = TimingEngine(netlist, LIBRARY, incremental=True)
        before = {
            name: engine.forward_arrival(name)
            for name in netlist.topo_order()
            if netlist[name].gtype is not GateType.OUTPUT
        }
        gate = netlist.comb_gates()[3]
        cell = LIBRARY[gate.cell]
        candidate = LIBRARY.next_drive_up(cell) or LIBRARY.vt_variant(
            cell, "lvt"
        )
        assert candidate is not None
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            trial = TrialMoves(netlist)
            trial.apply(gate.name, candidate.name)
            engine.worst_arrival()  # evaluate the trial
            trial.rollback()  # reject it
            after = {
                name: engine.forward_arrival(name)
                for name in netlist.topo_order()
                if netlist[name].gtype is not GateType.OUTPUT
            }
        assert collector.counters.get("sta.full_recompute", 0) == 0
        assert collector.counters.get("sta.invalidate", 0) == 0
        assert collector.counters["sta.incremental.events"] == 2
        # The undo restores the exact pre-trial arrivals.
        assert after == before

    def test_full_mode_invalidates_per_event(self):
        netlist = _generated(13, gates=60)
        engine = TimingEngine(netlist, LIBRARY, incremental=False)
        engine.worst_arrival()
        gate = netlist.comb_gates()[0]
        cell = LIBRARY[gate.cell]
        candidate = LIBRARY.next_drive_up(cell) or LIBRARY.vt_variant(
            cell, "lvt"
        )
        assert candidate is not None
        collector = metrics.MetricsCollector()
        with metrics.collect_into(collector):
            netlist.replace_cell(gate.name, candidate.name)
            engine.worst_arrival()
        assert collector.counters["sta.invalidate"] == 1
        assert collector.counters["sta.full_recompute"] == 1
        assert "sta.incremental.events" not in collector.counters

    def test_explicit_invalidate_still_recovers(self):
        netlist = _generated(14, gates=60)
        engine = TimingEngine(netlist, LIBRARY, incremental=True)
        worst = engine.worst_arrival()
        engine.invalidate()
        assert engine.worst_arrival() == worst

    def test_backward_tables_outside_cone_survive(self):
        netlist = _generated(15, gates=100, flops=10)
        engine = TimingEngine(netlist, LIBRARY, incremental=True)
        endpoints = [g.name for g in netlist.endpoints()]
        for endpoint in endpoints:
            engine.backward_delay(endpoint, endpoint)
        cached_before = set(engine._backward_to)
        gate = netlist.comb_gates()[0]
        # A cell swap dirties the gate AND its fanins (their loads
        # change), so the affected region is the union of their cones.
        cone = set()
        for name in {gate.name, *gate.fanins}:
            cone |= netlist.fanout_cone(name)
        untouched = cached_before - cone
        if not untouched:
            pytest.skip("every endpoint in the mutated cone")
        cell = LIBRARY[gate.cell]
        candidate = LIBRARY.next_drive_up(cell) or LIBRARY.vt_variant(
            cell, "lvt"
        )
        assert candidate is not None
        netlist.replace_cell(gate.name, candidate.name)
        engine.forward_arrival(gate.name)  # flush
        assert untouched <= set(engine._backward_to)
        oracle = TimingEngine(
            netlist.copy(), LIBRARY, incremental=False
        )
        for endpoint in endpoints:
            assert _same_float(
                engine.backward_delay(gate.name, endpoint),
                oracle.backward_delay(gate.name, endpoint),
            )


# -- flow-level parity -------------------------------------------------------


class TestFlowParity:
    @pytest.mark.parametrize(
        "method", ["base", "grar", "grar-gate", "evl", "nvl", "rvl"]
    )
    def test_flow_outcomes_identical_across_modes(
        self, method, library, s1196
    ):
        outcomes = {}
        for mode in ("incremental", "full"):
            outcome = run_flow(
                method, s1196, library, 1.0, sta_mode=mode
            )
            arrivals = outcome.circuit.endpoint_arrivals(
                outcome.retiming.placement
            )
            outcomes[mode] = (
                outcome.n_slaves,
                outcome.n_edl,
                outcome.sequential_area,
                outcome.comb_area,
                sorted(outcome.edl_endpoints),
                outcome.sizing.resized if outcome.sizing else None,
                arrivals,
            )
        assert outcomes["incremental"] == outcomes["full"]
