"""Every Table I circuit builds, validates, and calibrates."""

import pytest

from repro.circuits import BENCHMARK_PROFILES, build_benchmark, suite_names
from repro.flows import prepare_circuit
from repro.harness.paper import PAPER_TABLE1
from repro.latches.conversion import original_flop_report
from repro.netlist import validate


@pytest.mark.parametrize("name", suite_names())
def test_profile_builds_and_calibrates(name, library):
    netlist = build_benchmark(name, library)
    validate(netlist, library)

    _, flops, paper_nce, _ = PAPER_TABLE1[name]
    assert len(netlist.flops()) == flops

    scheme, _ = prepare_circuit(netlist.copy(), library)
    report = original_flop_report(netlist, scheme, library)
    # NCE calibration: within half the paper's count (or ±6 for the
    # tiny circuits where a couple of endpoints is half the budget).
    assert abs(report.n_near_critical - paper_nce) <= max(
        6, 0.5 * paper_nce
    ), f"{name}: NCE {report.n_near_critical} vs paper {paper_nce}"

    # The clock recipe holds.
    assert scheme.window_open == pytest.approx(
        0.7 * scheme.max_path_delay
    )
