"""Behavioural tests for the Fig. 2 error-detecting latches."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cells.edl import (
    ShadowFlipFlopLatch,
    TransitionDetectingLatch,
    window_has_transition,
)

WINDOW = (10.0, 12.5)  # the Fig. 4 scheme's resiliency window


class TestShadowFlipFlopLatch:
    def test_no_transition_no_error(self):
        result = ShadowFlipFlopLatch().evaluate(
            [(2.0, 1)], *WINDOW, initial=0
        )
        assert not result.error
        assert result.captured == 1

    def test_transition_inside_window_flags(self):
        result = ShadowFlipFlopLatch().evaluate(
            [(11.0, 1)], *WINDOW, initial=0
        )
        assert result.error
        assert result.error_time == pytest.approx(11.0)
        assert result.captured == 1

    def test_transition_at_open_is_sampled_not_error(self):
        """An event exactly at the opening edge is the sampled value."""
        result = ShadowFlipFlopLatch().evaluate(
            [(10.0, 1)], *WINDOW, initial=0
        )
        assert not result.error

    def test_transition_after_close_ignored(self):
        result = ShadowFlipFlopLatch().evaluate(
            [(13.0, 1)], *WINDOW, initial=0
        )
        assert not result.error
        assert result.captured == 0  # value at window close

    def test_glitch_back_to_sampled_still_flags(self):
        """A 0->1->0 glitch inside the window leaves a latched error."""
        result = ShadowFlipFlopLatch().evaluate(
            [(10.5, 1), (11.0, 0)], *WINDOW, initial=0
        )
        assert result.error

    def test_unsorted_events_rejected(self):
        with pytest.raises(ValueError):
            ShadowFlipFlopLatch().evaluate([(2, 1), (1, 0)], *WINDOW)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ShadowFlipFlopLatch().evaluate([(1, 2)], *WINDOW)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            ShadowFlipFlopLatch().evaluate([], 5.0, 4.0)


class TestTransitionDetectingLatch:
    def test_any_window_transition_flags(self):
        result = TransitionDetectingLatch().evaluate(
            [(11.2, 1)], *WINDOW, initial=0
        )
        assert result.error

    def test_pre_window_transitions_fine(self):
        result = TransitionDetectingLatch().evaluate(
            [(1.0, 1), (2.0, 0), (3.0, 1)], *WINDOW, initial=0
        )
        assert not result.error
        assert result.captured == 1


class TestEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=14),
                st.integers(min_value=0, max_value=1),
            ),
            max_size=6,
        ).map(lambda evs: sorted(evs, key=lambda e: e[0])),
        st.integers(min_value=0, max_value=1),
    )
    def test_both_designs_agree(self, events, initial):
        """Fig. 2's two designs flag the same cycles.

        The shadow-FF compares against the sampled value and the TDTB
        detects transitions; for any waveform, a transition inside the
        window implies a mismatch against the sample and vice versa.
        """
        shadow = ShadowFlipFlopLatch().evaluate(events, *WINDOW, initial)
        tdtb = TransitionDetectingLatch().evaluate(events, *WINDOW, initial)
        assert shadow.error == tdtb.error
        assert shadow.captured == tdtb.captured

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=14),
                st.integers(min_value=0, max_value=1),
            ),
            max_size=6,
        ).map(lambda evs: sorted(evs, key=lambda e: e[0])),
        st.integers(min_value=0, max_value=1),
    )
    def test_abstract_condition_matches(self, events, initial):
        """The estimator's window predicate agrees with the latches.

        Note the predicate sees *value changes* only, so the event list
        is first collapsed to actual transitions.
        """
        times = []
        value = initial
        for when, new in events:
            if new != value:
                times.append(when)
                value = new
        predicted = window_has_transition(times, *WINDOW)
        shadow = ShadowFlipFlopLatch().evaluate(events, *WINDOW, initial)
        assert shadow.error == predicted


class TestWindowPredicate:
    def test_empty(self):
        assert not window_has_transition([], 1.0, 2.0)

    def test_boundaries(self):
        assert not window_has_transition([1.0], 1.0, 2.0)  # open excl
        assert window_has_transition([2.0], 1.0, 2.0)  # close incl
        assert window_has_transition([1.5], 1.0, 2.0)

    def test_unsorted_input(self):
        assert window_has_transition([5.0, 1.5, 0.1], 1.0, 2.0)
